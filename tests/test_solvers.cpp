// Krylov solvers against the dense direct solve and structural checks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "obs/metrics.h"

#include "dirac/dense_reference.h"
#include "dirac/even_odd.h"
#include "dirac/staggered.h"
#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "solvers/bicgstab.h"
#include "solvers/cg.h"
#include "solvers/gcr.h"
#include "solvers/mr.h"

namespace lqcd {
namespace {

struct WilsonSystem {
  LatticeGeometry g{{4, 4, 4, 4}};
  GaugeField<double> u = weak_gauge(g, 101, 0.3);
  double mass = 0.2;
  WilsonCloverOperator<double> m{u, nullptr, mass};
  WilsonField<double> b = gaussian_wilson_source(g, 102);

  double residual(const WilsonField<double>& x) {
    WilsonField<double> r(g);
    m.apply(r, x);
    scale(-1.0, r);
    axpy(1.0, b, r);
    return std::sqrt(norm2(r) / norm2(b));
  }
};

TEST(Solvers, BiCgStabSolvesWilson) {
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  BiCgStabParams p;
  p.tol = 1e-10;
  const SolverStats stats = bicgstab_solve(sys.m, x, sys.b, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(sys.residual(x), 1e-9);
  EXPECT_GT(stats.iterations, 2);
}

TEST(Solvers, BiCgStabMatchesDenseDirect) {
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  BiCgStabParams p;
  p.tol = 1e-12;
  ASSERT_TRUE(bicgstab_solve(sys.m, x, sys.b, p).converged);

  const DenseMatrix<double> md = dense_wilson_clover(sys.u, nullptr, sys.mass);
  const auto x_direct = LuFactorization<double>(md).solve(flatten(sys.b));
  WilsonField<double> xd(sys.g);
  unflatten(x_direct, xd);
  axpy(-1.0, xd, x);
  EXPECT_LT(std::sqrt(norm2(x) / norm2(xd)), 1e-8);
}

TEST(Solvers, GcrUnpreconditionedSolvesWilson) {
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  GcrParams p;
  p.tol = 1e-9;
  p.kmax = 12;
  p.delta = 0.0;  // no early restart
  const SolverStats stats = gcr_solve(sys.m, x, sys.b, nullptr, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(sys.residual(x), 1e-8);
}

TEST(Solvers, GcrRestartsAndStillConverges) {
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  GcrParams p;
  p.tol = 1e-9;
  p.kmax = 4;  // force frequent restarts
  const SolverStats stats = gcr_solve(sys.m, x, sys.b, nullptr, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.restarts, 0);
  EXPECT_LT(sys.residual(x), 1e-8);
}

TEST(Solvers, GcrDeltaTriggersEarlyRestart) {
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  GcrParams p;
  p.tol = 1e-9;
  p.kmax = 64;      // large basis...
  p.delta = 0.5;    // ...but restart on a 2x residual drop
  const SolverStats stats = gcr_solve(sys.m, x, sys.b, nullptr, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.restarts, 1);
}

TEST(Solvers, GcrConvergedCycleSkipsRedundantRestart) {
  // Regression: a cycle that ends because the iterated residual met the
  // target used to run a full restart anyway — one duplicated matvec on a
  // residual the epilogue recomputes, and a phantom entry in
  // stats.restarts.  With a basis large enough for a single cycle and the
  // delta test off, the exact accounting is pinned down: one initial
  // residual matvec, one per iteration, one final check — and no restarts.
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  GcrParams p;
  p.tol = 1e-9;
  p.kmax = 1000;  // never fills within max_iter
  p.delta = 0.0;  // no early restart
  const SolverStats stats = gcr_solve(sys.m, x, sys.b, nullptr, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.restarts, 0);
  EXPECT_EQ(stats.matvecs, stats.iterations + 2);
  EXPECT_LT(sys.residual(x), 1e-8);
}

TEST(Solvers, GcrWithInitialGuess) {
  WilsonSystem sys;
  // Start from a partially converged solution.
  WilsonField<double> x(sys.g);
  set_zero(x);
  GcrParams rough;
  rough.tol = 1e-2;
  gcr_solve(sys.m, x, sys.b, nullptr, rough);
  const double r0 = sys.residual(x);
  GcrParams fine;
  fine.tol = 1e-9;
  const SolverStats stats = gcr_solve(sys.m, x, sys.b, nullptr, fine);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(sys.residual(x), r0);
}

TEST(Solvers, GcrFusedMatchesUnfusedBitwise) {
  // GcrParams::fused swaps one-op-per-pass linear algebra for the fused
  // kernels.  Both run classical Gram-Schmidt with the same per-site
  // operation order on the fixed reduction grid, so every iterate and
  // every residual-history entry must agree BITWISE — the switch only
  // changes memory traffic, never numbers.
  WilsonSystem sys;
  GcrParams p;
  p.tol = 1e-9;
  p.kmax = 12;

  WilsonField<double> x_fused(sys.g);
  set_zero(x_fused);
  p.fused = true;
  const SolverStats s_fused = gcr_solve(sys.m, x_fused, sys.b, nullptr, p);

  WilsonField<double> x_unfused(sys.g);
  set_zero(x_unfused);
  p.fused = false;
  const SolverStats s_unfused = gcr_solve(sys.m, x_unfused, sys.b, nullptr, p);

  EXPECT_TRUE(s_fused.converged);
  EXPECT_TRUE(s_unfused.converged);
  EXPECT_EQ(s_fused.iterations, s_unfused.iterations);
  EXPECT_EQ(s_fused.restarts, s_unfused.restarts);
  EXPECT_EQ(s_fused.final_residual, s_unfused.final_residual);
  ASSERT_EQ(s_fused.residual_history.size(), s_unfused.residual_history.size());
  for (std::size_t i = 0; i < s_fused.residual_history.size(); ++i) {
    EXPECT_EQ(s_fused.residual_history[i], s_unfused.residual_history[i])
        << "i=" << i;
  }
  auto sa = x_fused.sites();
  auto sb = x_unfused.sites();
  EXPECT_EQ(std::memcmp(sa.data(), sb.data(), sa.size_bytes()), 0);
}

TEST(Solvers, GcrFusedIterationSweepBudget) {
  // The fused-kernel arithmetic: at basis size k an iteration's
  // orthogonalization + residual update takes 4 lattice sweeps fused
  // (block_cdot, block_caxpy_norm2, scale_cdot, caxpy_norm2; 3 when k=0)
  // against 2k+5 unfused.  Both are metered into solver.gcr.iter_sweeps.
  WilsonSystem sys;
  Counter& iter_sweeps = metric_counter("solver.gcr.iter_sweeps");
  GcrParams p;
  p.tol = 1e-9;
  p.kmax = 16;

  WilsonField<double> x(sys.g);
  set_zero(x);
  p.fused = true;
  std::uint64_t before = iter_sweeps.value();
  const SolverStats s_fused = gcr_solve(sys.m, x, sys.b, nullptr, p);
  const std::uint64_t fused_sweeps = iter_sweeps.value() - before;
  ASSERT_GT(s_fused.iterations, 1);
  EXPECT_LE(fused_sweeps,
            4u * static_cast<std::uint64_t>(s_fused.iterations));

  set_zero(x);
  p.fused = false;
  before = iter_sweeps.value();
  const SolverStats s_unfused = gcr_solve(sys.m, x, sys.b, nullptr, p);
  const std::uint64_t unfused_sweeps = iter_sweeps.value() - before;
  // Same iteration count (bitwise-identical trajectories), strictly more
  // memory passes once any iteration ran with k > 0.
  EXPECT_EQ(s_unfused.iterations, s_fused.iterations);
  EXPECT_GT(unfused_sweeps, fused_sweeps);
}

TEST(Solvers, CgSolvesStaggeredSchur) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 103);
  const AsqtadLinks links = build_asqtad_links(u);
  StaggeredSchurOperator<double> schur(links.fat, links.lng, 0.1, 0.0);
  StaggeredField<double> b = gaussian_staggered_source(g, 104);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    b.at(s) = ColorVector<double>{};
  }
  StaggeredField<double> x(g);
  set_zero(x);
  CgParams p;
  p.tol = 1e-10;
  const SolverStats stats = cg_solve(schur, x, b, p);
  EXPECT_TRUE(stats.converged);
  StaggeredField<double> r(g);
  schur.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 1e-9);
}

TEST(Solvers, CgNormalEquationsSolveWilson) {
  // CGNE via the gamma5 trick: solve M^dag M y = M^dag b.
  WilsonSystem sys;
  WilsonNormalOperator<double> n(sys.m);
  // rhs = M^dag b = g5 M g5 b.
  WilsonField<double> rhs = sys.b;
  apply_gamma5_field(rhs);
  WilsonField<double> tmp(sys.g);
  sys.m.apply(tmp, rhs);
  rhs = tmp;
  apply_gamma5_field(rhs);

  WilsonField<double> x(sys.g);
  set_zero(x);
  CgParams p;
  p.tol = 1e-10;
  p.max_iter = 10000;
  const SolverStats stats = cg_solve(n, x, rhs, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(sys.residual(x), 1e-7);
}

TEST(Solvers, CgReliableUpdates) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 105);
  const AsqtadLinks links = build_asqtad_links(u);
  StaggeredSchurOperator<double> schur(links.fat, links.lng, 0.05, 0.0);
  StaggeredField<double> b = gaussian_staggered_source(g, 106);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    b.at(s) = ColorVector<double>{};
  }
  StaggeredField<double> x(g);
  set_zero(x);
  CgParams p;
  p.tol = 1e-10;
  p.reliable_every = 25;
  const SolverStats stats = cg_solve(schur, x, b, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.restarts, 0);
}

TEST(Solvers, MrReducesResidual) {
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  MrParams p;
  p.steps = 20;
  const SolverStats stats = mr_solve(sys.m, x, sys.b, p);
  EXPECT_LT(stats.final_residual, std::sqrt(norm2(sys.b)));
  EXPECT_LT(sys.residual(x), 1.0);
}

TEST(Solvers, BlockMrEqualsGlobalOnDirichletOperator) {
  // On a block-decoupled operator, block-local MR and global MR minimize
  // the same decoupled functionals; both must strictly reduce each block's
  // residual, and block MR must match running MR per block.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 107);
  BlockMask mask(g, {1, 1, 1, 2});
  WilsonCloverOperator<double> dirichlet(u, nullptr, 0.3, &mask);
  const WilsonField<double> b = gaussian_wilson_source(g, 108);

  WilsonField<double> x_block(g);
  set_zero(x_block);
  MrParams p;
  p.steps = 5;
  mr_solve(dirichlet, x_block, b, p, &mask);

  // Per-block residuals must all have decreased.
  WilsonField<double> r(g);
  dirichlet.apply(r, x_block);
  scale(-1.0, r);
  axpy(1.0, b, r);
  const auto res = block_norm2(r, mask);
  const auto b2 = block_norm2(b, mask);
  for (std::size_t i = 0; i < res.size(); ++i) {
    EXPECT_LT(res[i], b2[i]);
  }
}

TEST(Solvers, ZeroRhsGivesZeroSolution) {
  WilsonSystem sys;
  WilsonField<double> zero_b(sys.g);
  set_zero(zero_b);
  WilsonField<double> x = sys.b;  // non-zero initial content
  const SolverStats s1 = bicgstab_solve(sys.m, x, zero_b, {});
  EXPECT_TRUE(s1.converged);
  EXPECT_EQ(norm2(x), 0.0);
  x = sys.b;
  GcrParams gp;
  const SolverStats s2 = gcr_solve(sys.m, x, zero_b, nullptr, gp);
  EXPECT_TRUE(s2.converged);
  EXPECT_EQ(norm2(x), 0.0);
}

}  // namespace
}  // namespace lqcd
