// Precision-truncated ghost wire (comm/wire.h, LQCD_GHOST_PREC): the
// pack -> encode -> wire -> decode -> scatter round trip across all three
// wire precisions, both actions and parity restrictions; exact byte
// metering against wire_site_bytes; the <= 30% compression acceptance
// bound of the half wire; seq==threads bitwise determinism at every
// precision; and chaos-repair stability (a retried send reproduces the
// identical compressed payload, so the repaired result is bitwise equal
// to the fault-free run).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "comm/domain_map.h"
#include "comm/exchange.h"
#include "comm/virtual_cluster.h"
#include "comm/wire.h"
#include "dirac/partitioned.h"
#include "dirac/wilson_ops.h"
#include "fault/fault.h"
#include "fields/blas.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "linalg/half.h"
#include "linalg/reconstruct.h"
#include "obs/metrics.h"
#include "tune/tune_cache.h"

namespace lqcd {
namespace {

using std::chrono::microseconds;

/// Restores the rank mode on scope exit.
class ScopedRankMode {
 public:
  explicit ScopedRankMode(RankMode m) : prev_(rank_mode()) { set_rank_mode(m); }
  ~ScopedRankMode() { set_rank_mode(prev_); }

 private:
  RankMode prev_;
};

/// Forces LQCD_GHOST_PREC for the scope (re-reading the policy), and
/// restores the previous environment — and policy — on exit.
class ScopedGhostPrec {
 public:
  explicit ScopedGhostPrec(const char* value) {
    const char* prev = std::getenv("LQCD_GHOST_PREC");
    had_prev_ = prev != nullptr;
    if (had_prev_) saved_ = prev;
    if (value != nullptr) {
      setenv("LQCD_GHOST_PREC", value, 1);
    } else {
      unsetenv("LQCD_GHOST_PREC");
    }
    init_ghost_prec_from_env();
  }
  ~ScopedGhostPrec() {
    if (had_prev_) {
      setenv("LQCD_GHOST_PREC", saved_.c_str(), 1);
    } else {
      unsetenv("LQCD_GHOST_PREC");
    }
    init_ghost_prec_from_env();
  }

 private:
  bool had_prev_ = false;
  std::string saved_;
};

/// Forces LQCD_GHOST_RECON for the scope (re-reading the policy), mirroring
/// ScopedGhostPrec.
class ScopedGhostRecon {
 public:
  explicit ScopedGhostRecon(const char* value) {
    const char* prev = std::getenv("LQCD_GHOST_RECON");
    had_prev_ = prev != nullptr;
    if (had_prev_) saved_ = prev;
    if (value != nullptr) {
      setenv("LQCD_GHOST_RECON", value, 1);
    } else {
      unsetenv("LQCD_GHOST_RECON");
    }
    init_ghost_recon_from_env();
  }
  ~ScopedGhostRecon() {
    if (had_prev_) {
      setenv("LQCD_GHOST_RECON", saved_.c_str(), 1);
    } else {
      unsetenv("LQCD_GHOST_RECON");
    }
    init_ghost_recon_from_env();
  }

 private:
  bool had_prev_ = false;
  std::string saved_;
};

// ---------------------------------------------------------------------------
// Wire codec unit properties.
// ---------------------------------------------------------------------------

TEST(WireCodec, SiteBytesMatchEnvelopeFormat) {
  // Wilson spin-projected face site: 12 reals.
  EXPECT_EQ(wire_site_bytes<HalfSpinor<double>>(Precision::Double), 96u);
  EXPECT_EQ(wire_site_bytes<HalfSpinor<double>>(Precision::Single), 48u);
  // Half envelope: 4-byte norm + 12 int16 payload.
  EXPECT_EQ(wire_site_bytes<HalfSpinor<double>>(Precision::Half), 28u);
  // Staggered color-vector face site: 6 reals.
  EXPECT_EQ(wire_site_bytes<ColorVector<double>>(Precision::Double), 48u);
  EXPECT_EQ(wire_site_bytes<ColorVector<double>>(Precision::Single), 24u);
  EXPECT_EQ(wire_site_bytes<ColorVector<double>>(Precision::Half), 16u);
  // At the native precision the wire is the raw site (memcpy fast path).
  EXPECT_EQ(wire_site_bytes<HalfSpinor<double>>(Precision::Double),
            sizeof(HalfSpinor<double>));
  EXPECT_EQ(wire_site_bytes<HalfSpinor<float>>(Precision::Single),
            sizeof(HalfSpinor<float>));
}

TEST(WireCodec, ClampNeverUpcastsBeyondNative) {
  // A float-native ghost cannot widen to a double wire...
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<float>>(Precision::Double),
            Precision::Single);
  EXPECT_EQ(clamp_wire_precision<ColorVector<float>>(Precision::Double),
            Precision::Single);
  // ...but any narrowing request passes through unchanged.
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<double>>(Precision::Double),
            Precision::Double);
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<double>>(Precision::Single),
            Precision::Single);
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<double>>(Precision::Half),
            Precision::Half);
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<float>>(Precision::Half),
            Precision::Half);
}

TEST(WireCodec, EnvPolicyContract) {
  {
    ScopedGhostPrec env("half");
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Half);
    EXPECT_FALSE(ghost_prec_setting().tune);
  }
  {
    ScopedGhostPrec env("float");
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Single);
    EXPECT_EQ(default_wire_precision<ColorVector<float>>(), Precision::Single);
  }
  {
    ScopedGhostPrec env("double");
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Double);
    // Clamped at the float-native ghost: no upcast.
    EXPECT_EQ(default_wire_precision<HalfSpinor<float>>(), Precision::Single);
  }
  {
    ScopedGhostPrec env("tune");
    EXPECT_TRUE(ghost_prec_setting().tune);
    // tune resolves per-operator; the bare default stays native.
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Double);
  }
  {
    ScopedGhostPrec env("bogus");  // warns, stays native
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Double);
    EXPECT_FALSE(ghost_prec_setting().tune);
  }
  {
    ScopedGhostPrec env(nullptr);
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Double);
  }
}

TEST(WireCodec, UnitSiteBytesMatchEnvelopeFormat) {
  using WS = HalfSpinor<double>;
  using CV = ColorVector<double>;
  // Unit form: float norm + meta byte + (n-1) direction scalars.
  EXPECT_EQ(wire_site_bytes<WS>(WireFormat(Precision::Double, WireRecon::Unit)),
            93u);
  EXPECT_EQ(wire_site_bytes<WS>(WireFormat(Precision::Single, WireRecon::Unit)),
            49u);
  EXPECT_EQ(wire_site_bytes<WS>(WireFormat(Precision::Half, WireRecon::Unit)),
            27u);
  EXPECT_EQ(wire_site_bytes<CV>(WireFormat(Precision::Double, WireRecon::Unit)),
            45u);
  EXPECT_EQ(wire_site_bytes<CV>(WireFormat(Precision::Single, WireRecon::Unit)),
            25u);
  EXPECT_EQ(wire_site_bytes<CV>(WireFormat(Precision::Half, WireRecon::Unit)),
            15u);
  // Full recon defers to the precision envelope (and a bare Precision
  // converts to its full-recon format, preserving the PR 9 call sites).
  EXPECT_EQ(wire_site_bytes<WS>(WireFormat(Precision::Half)), 28u);
  EXPECT_EQ(wire_site_bytes<WS>(WireFormat(Precision::Double)), 96u);
}

TEST(WireCodec, UnitHalfBeatsTheFullHalfCompressionBaseline) {
  // The tentpole acceptance bound: the (unit, half) Wilson face site must
  // land measurably under PR 9's 28/96 = 29.2%-of-double envelope.
  const double unit_half = static_cast<double>(wire_site_bytes<
      HalfSpinor<double>>(WireFormat(Precision::Half, WireRecon::Unit)));
  const double full_half = static_cast<double>(
      wire_site_bytes<HalfSpinor<double>>(Precision::Half));
  const double full_double = static_cast<double>(
      wire_site_bytes<HalfSpinor<double>>(Precision::Double));
  EXPECT_LT(unit_half, full_half);
  EXPECT_LT(unit_half / full_double, 0.292);
}

TEST(WireCodec, ReconEnvPolicyContract) {
  {
    ScopedGhostRecon env("min");
    ASSERT_TRUE(ghost_recon_setting().forced.has_value());
    EXPECT_EQ(*ghost_recon_setting().forced, WireRecon::Unit);
    EXPECT_EQ(ghost_recon_setting().gauge, Reconstruct::Twelve);
    EXPECT_FALSE(ghost_recon_setting().tune);
    EXPECT_EQ(default_wire_format<HalfSpinor<double>>().recon, WireRecon::Unit);
  }
  {
    ScopedGhostRecon env("12");  // alias of min/unit
    EXPECT_EQ(*ghost_recon_setting().forced, WireRecon::Unit);
    EXPECT_EQ(ghost_recon_setting().gauge, Reconstruct::Twelve);
  }
  {
    ScopedGhostRecon env("8");
    EXPECT_EQ(*ghost_recon_setting().forced, WireRecon::Unit);
    EXPECT_EQ(ghost_recon_setting().gauge, Reconstruct::Eight);
  }
  {
    ScopedGhostRecon env("tune");
    EXPECT_FALSE(ghost_recon_setting().forced.has_value());
    EXPECT_TRUE(ghost_recon_setting().tune);
    // Gauge ghosts move once per solve; tune pins them to the exact-for-
    // unitary recon-12 rather than sweeping.
    EXPECT_EQ(ghost_recon_setting().gauge, Reconstruct::Twelve);
    // The bare default stays full: tune resolves per operator.
    EXPECT_EQ(default_wire_format<HalfSpinor<double>>().recon, WireRecon::Full);
  }
  {
    ScopedGhostRecon env("full");
    EXPECT_EQ(ghost_recon_setting().gauge, Reconstruct::None);
    EXPECT_EQ(default_wire_format<HalfSpinor<double>>().recon, WireRecon::Full);
  }
  {
    ScopedGhostRecon env("bogus");  // warns once, defaults hold
    EXPECT_FALSE(ghost_recon_setting().forced.has_value());
    EXPECT_FALSE(ghost_recon_setting().tune);
    EXPECT_EQ(ghost_recon_setting().gauge, Reconstruct::None);
  }
  {
    ScopedGhostRecon env(nullptr);
    EXPECT_FALSE(ghost_recon_setting().forced.has_value());
    EXPECT_EQ(default_wire_format<HalfSpinor<double>>().recon, WireRecon::Full);
  }
}

std::vector<HalfSpinor<double>> fuzz_faces(std::uint64_t seed, std::size_t n) {
  // Deterministic pseudo-random face payloads, including exact zeros (the
  // parity holes of a parity-restricted pack) and large-magnitude sites.
  std::vector<HalfSpinor<double>> faces(n);
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<double>(static_cast<std::int64_t>(s >> 12)) / (1ll << 51);
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) continue;  // leave value-initialized zero sites in
    const double scale = i % 5 == 0 ? 1e4 : 1.0;
    for (int sp = 0; sp < 2; ++sp) {
      for (int c = 0; c < 3; ++c) {
        faces[i].h[sp].c[c] = Cplx<double>(next() * scale, next() * scale);
      }
    }
  }
  return faces;
}

TEST(WireCodec, RoundTripLosslessAtDoubleAndFloat) {
  const std::vector<HalfSpinor<double>> ref = fuzz_faces(11, 64);
  std::vector<unsigned char> scratch;

  // Double wire on a double ghost is the native memcpy fast path:
  // bit-exact identity on arbitrary payloads.
  std::vector<HalfSpinor<double>> faces = ref;
  wire_roundtrip_face<HalfSpinor<double>>(std::span<HalfSpinor<double>>(faces),
                                          Precision::Double, scratch);
  EXPECT_EQ(std::memcmp(faces.data(), ref.data(),
                        faces.size() * sizeof(HalfSpinor<double>)),
            0);

  // Float wire: the first trip truncates to fp32 (bounded, tiny); every
  // further trip is bit-exact identity — the wire is lossless on its own
  // image, so repeated exchanges (and chaos re-sends) cannot drift.
  faces = ref;
  wire_roundtrip_face<HalfSpinor<double>>(std::span<HalfSpinor<double>>(faces),
                                          Precision::Single, scratch);
  for (std::size_t i = 0; i < faces.size(); ++i) {
    for (int sp = 0; sp < 2; ++sp) {
      for (int c = 0; c < 3; ++c) {
        const Cplx<double> got = faces[i].h[sp].c[c];
        const Cplx<double> want = ref[i].h[sp].c[c];
        EXPECT_LE(std::abs(got - want), 1e-7 * (1.0 + std::abs(want)))
            << "site " << i;
      }
    }
  }
  const std::vector<HalfSpinor<double>> once = faces;
  wire_roundtrip_face<HalfSpinor<double>>(std::span<HalfSpinor<double>>(faces),
                                          Precision::Single, scratch);
  EXPECT_EQ(std::memcmp(faces.data(), once.data(),
                        faces.size() * sizeof(HalfSpinor<double>)),
            0);
}

TEST(WireCodec, HalfRoundTripDeterministicAndBounded) {
  std::vector<HalfSpinor<double>> faces = fuzz_faces(13, 64);
  const std::vector<HalfSpinor<double>> ref = faces;

  std::vector<unsigned char> wire_a, wire_b;
  encode_face<HalfSpinor<double>>(std::span<const HalfSpinor<double>>(faces),
                                  Precision::Half, wire_a);
  encode_face<HalfSpinor<double>>(std::span<const HalfSpinor<double>>(faces),
                                  Precision::Half, wire_b);
  ASSERT_EQ(wire_a.size(), faces.size() * 28u);
  // Same input -> same bytes, run to run: the determinism contract the
  // chaos-repair path (identical re-sent payloads) rests on.
  EXPECT_EQ(wire_a, wire_b);

  decode_face<HalfSpinor<double>>(std::span<const unsigned char>(wire_a),
                                  Precision::Half,
                                  std::span<HalfSpinor<double>>(faces));
  for (std::size_t i = 0; i < faces.size(); ++i) {
    float norm = 0.0f;
    for (int sp = 0; sp < 2; ++sp) {
      for (int c = 0; c < 3; ++c) {
        norm = std::max(
            norm, std::fabs(static_cast<float>(ref[i].h[sp].c[c].real())));
        norm = std::max(
            norm, std::fabs(static_cast<float>(ref[i].h[sp].c[c].imag())));
      }
    }
    const double bound =
        static_cast<double>(half_error_bound(norm == 0.0f ? 1.0f : norm)) +
        1e-12;
    for (int sp = 0; sp < 2; ++sp) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_LE(std::fabs(faces[i].h[sp].c[c].real() -
                            ref[i].h[sp].c[c].real()),
                  bound)
            << "site " << i;
        EXPECT_LE(std::fabs(faces[i].h[sp].c[c].imag() -
                            ref[i].h[sp].c[c].imag()),
                  bound)
            << "site " << i;
      }
    }
    // Exact zero sites decode exactly (norm forced to 1 at encode).
    if (i % 7 == 3) {
      EXPECT_EQ(std::memcmp(&faces[i], &ref[i], sizeof(faces[i])), 0);
    }
  }

  // Re-encoding the decoded values reproduces the identical wire image:
  // the codec is idempotent past the first quantization, so a repaired
  // exchange can never ratchet precision away.
  std::vector<unsigned char> wire_c;
  encode_face<HalfSpinor<double>>(std::span<const HalfSpinor<double>>(faces),
                                  Precision::Half, wire_c);
  decode_face<HalfSpinor<double>>(std::span<const unsigned char>(wire_c),
                                  Precision::Half,
                                  std::span<HalfSpinor<double>>(faces));
  std::vector<unsigned char> wire_d;
  encode_face<HalfSpinor<double>>(std::span<const HalfSpinor<double>>(faces),
                                  Precision::Half, wire_d);
  EXPECT_EQ(wire_c, wire_d);
}

TEST(WireCodec, UnitRoundTripDeterministicBoundedAndZeroExact) {
  std::vector<HalfSpinor<double>> ref = fuzz_faces(17, 64);

  for (Precision p :
       {Precision::Double, Precision::Single, Precision::Half}) {
    const WireFormat f(p, WireRecon::Unit);
    std::vector<HalfSpinor<double>> faces = ref;

    std::vector<unsigned char> wire_a, wire_b;
    encode_face<HalfSpinor<double>>(
        std::span<const HalfSpinor<double>>(faces), f, wire_a);
    encode_face<HalfSpinor<double>>(
        std::span<const HalfSpinor<double>>(faces), f, wire_b);
    ASSERT_EQ(wire_a.size(),
              faces.size() * wire_site_bytes<HalfSpinor<double>>(f));
    // Same input -> same bytes (the chaos-repair contract): the unit
    // encode is a pure per-site function, norms and argmax included.
    EXPECT_EQ(wire_a, wire_b);

    decode_face<HalfSpinor<double>>(std::span<const unsigned char>(wire_a), f,
                                    std::span<HalfSpinor<double>>(faces));
    for (std::size_t i = 0; i < faces.size(); ++i) {
      // Unit-form error scales with the site's L2 norm: direction
      // components carry the wire-precision quantization, and the dropped
      // (largest, so well-conditioned) component adds the unitarity-
      // recovery accumulation.  fp32 staging bounds even the double wire.
      double l2 = 0.0;
      for (int sp = 0; sp < 2; ++sp) {
        for (int c = 0; c < 3; ++c) {
          l2 += std::norm(ref[i].h[sp].c[c]);
        }
      }
      const double norm = std::sqrt(l2);
      const double rel = p == Precision::Half ? 2e-3 : 1e-5;
      const double bound = rel * (norm == 0.0 ? 1.0 : norm);
      for (int sp = 0; sp < 2; ++sp) {
        for (int c = 0; c < 3; ++c) {
          EXPECT_LE(std::abs(faces[i].h[sp].c[c] - ref[i].h[sp].c[c]), bound)
              << to_string(f) << " site " << i;
        }
      }
      // Zero sites (parity holes) decode to exact zeros: norm 0 on the
      // wire short-circuits the decode.
      if (i % 7 == 3) {
        EXPECT_EQ(std::memcmp(&faces[i], &ref[i], sizeof(faces[i])), 0)
            << to_string(f);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property fuzz: the full exchange round trip across wire precision x
// action x parity restriction, in both rank modes.
// ---------------------------------------------------------------------------

struct ExchangeCase {
  const char* prec;        // LQCD_GHOST_PREC value
  std::optional<Parity> parity;
};

class GhostWireExchangeTest : public ::testing::TestWithParam<ExchangeCase> {};

TEST_P(GhostWireExchangeTest, WilsonFacesSeqThreadsBitwiseAndLossless) {
  const ExchangeCase c = GetParam();
  Partitioning part(LatticeGeometry({4, 4, 4, 8}), {1, 1, 2, 2});
  NeighborTable nt(part.local(), part.partitioned_dims(), 1);
  DomainMap map(part);
  const WilsonField<double> global = gaussian_wilson_source(part.global(), 71);
  std::vector<WilsonField<double>> locals;
  map.scatter(global, locals);

  // This suite pins the *precision* axis: run at full recon regardless of
  // any ambient LQCD_GHOST_RECON (the unit-recon axis has its own suite).
  ScopedGhostRecon recon_env(nullptr);
  auto run = [&](RankMode m) {
    ScopedRankMode scoped(m);
    std::vector<GhostZones<HalfSpinor<double>>> ghosts(
        static_cast<std::size_t>(part.num_ranks()),
        GhostZones<HalfSpinor<double>>(nt));
    exchange_ghosts<WilsonProjectPacker<double>>(part, nt, locals, ghosts,
                                                 nullptr, c.parity);
    return ghosts;
  };

  // Baseline at the default (native, lossless) wire.
  std::vector<GhostZones<HalfSpinor<double>>> baseline;
  {
    ScopedGhostPrec env(nullptr);
    baseline = run(RankMode::Seq);
  }

  ScopedGhostPrec env(c.prec);
  const auto seq = run(RankMode::Seq);
  const auto thr = run(RankMode::Threads);
  const auto seq_again = run(RankMode::Seq);
  const bool lossless = std::string(c.prec) != "half";

  for (int r = 0; r < part.num_ranks(); ++r) {
    for (int mu = 0; mu < kNDim; ++mu) {
      if (!part.partitioned(mu)) continue;
      for (int dir = 0; dir < 2; ++dir) {
        const auto a = seq[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto b = thr[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto a2 = seq_again[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto base = baseline[static_cast<std::size_t>(r)].zone(mu, dir);
        ASSERT_EQ(a.size(), b.size());
        // Determinism: seq == threads, and run == rerun, at every
        // precision — the truncation is a pure function of the payload.
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0)
            << c.prec << " rank " << r << " mu " << mu << " dir " << dir;
        EXPECT_EQ(std::memcmp(a.data(), a2.data(), a.size_bytes()), 0)
            << c.prec << " rank " << r << " mu " << mu << " dir " << dir;
        if (lossless) {
          // double/float wires are lossless for double-precision spinors
          // projected into them... float only up to the fp32 cast, so
          // assert value equality with the exact-bits baseline only for
          // "double"; for "float" bound the cast error instead.
          if (std::string(c.prec) == "double") {
            EXPECT_EQ(std::memcmp(a.data(), base.data(), a.size_bytes()), 0)
                << "rank " << r << " mu " << mu << " dir " << dir;
          } else {
            for (std::size_t i = 0; i < a.size(); ++i) {
              for (int sp = 0; sp < 2; ++sp) {
                for (int cc = 0; cc < 3; ++cc) {
                  const Cplx<double> got = a[i].h[sp].c[cc];
                  const Cplx<double> want = base[i].h[sp].c[cc];
                  EXPECT_EQ(got.real(), static_cast<double>(static_cast<float>(
                                            want.real())));
                  EXPECT_EQ(got.imag(), static_cast<double>(static_cast<float>(
                                            want.imag())));
                }
              }
            }
          }
        } else {
          // Half: bounded by the per-site norm quantization step.
          for (std::size_t i = 0; i < a.size(); ++i) {
            float norm = 0.0f;
            for (int sp = 0; sp < 2; ++sp) {
              for (int cc = 0; cc < 3; ++cc) {
                norm = std::max(norm, std::fabs(static_cast<float>(
                                          base[i].h[sp].c[cc].real())));
                norm = std::max(norm, std::fabs(static_cast<float>(
                                          base[i].h[sp].c[cc].imag())));
              }
            }
            const double bound =
                static_cast<double>(
                    half_error_bound(norm == 0.0f ? 1.0f : norm)) +
                1e-12;
            for (int sp = 0; sp < 2; ++sp) {
              for (int cc = 0; cc < 3; ++cc) {
                EXPECT_LE(std::fabs(a[i].h[sp].c[cc].real() -
                                    base[i].h[sp].c[cc].real()),
                          bound);
                EXPECT_LE(std::fabs(a[i].h[sp].c[cc].imag() -
                                    base[i].h[sp].c[cc].imag()),
                          bound);
              }
            }
          }
        }
      }
    }
  }
}

TEST_P(GhostWireExchangeTest, StaggeredFacesSeqThreadsBitwise) {
  const ExchangeCase c = GetParam();
  Partitioning part(LatticeGeometry({4, 4, 4, 8}), {1, 1, 2, 2});
  NeighborTable nt(part.local(), part.partitioned_dims(), 1);
  DomainMap map(part);
  const StaggeredField<double> global =
      gaussian_staggered_source(part.global(), 73);
  std::vector<StaggeredField<double>> locals;
  map.scatter(global, locals);

  ScopedGhostPrec env(c.prec);
  auto run = [&](RankMode m) {
    ScopedRankMode scoped(m);
    std::vector<GhostZones<ColorVector<double>>> ghosts(
        static_cast<std::size_t>(part.num_ranks()),
        GhostZones<ColorVector<double>>(nt));
    exchange_ghosts<IdentityPacker<ColorVector<double>>>(
        part, nt, locals, ghosts, nullptr, c.parity);
    return ghosts;
  };
  const auto seq = run(RankMode::Seq);
  const auto thr = run(RankMode::Threads);
  for (int r = 0; r < part.num_ranks(); ++r) {
    for (int mu = 0; mu < kNDim; ++mu) {
      if (!part.partitioned(mu)) continue;
      for (int dir = 0; dir < 2; ++dir) {
        const auto a = seq[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto b = thr[static_cast<std::size_t>(r)].zone(mu, dir);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0)
            << c.prec << " rank " << r << " mu " << mu << " dir " << dir;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionsAndParities, GhostWireExchangeTest,
    ::testing::Values(ExchangeCase{"double", std::nullopt},
                      ExchangeCase{"double", Parity::Even},
                      ExchangeCase{"float", std::nullopt},
                      ExchangeCase{"float", Parity::Odd},
                      ExchangeCase{"half", std::nullopt},
                      ExchangeCase{"half", Parity::Even},
                      ExchangeCase{"half", Parity::Odd}));

// ---------------------------------------------------------------------------
// Unit-recon exchange: the reconstruction axis preserves the transport
// determinism contract — seq == threads == rerun, bitwise, at every wire
// precision and parity restriction.
// ---------------------------------------------------------------------------

class GhostWireUnitExchangeTest : public ::testing::TestWithParam<ExchangeCase> {
};

TEST_P(GhostWireUnitExchangeTest, UnitFacesSeqThreadsBitwise) {
  const ExchangeCase c = GetParam();
  Partitioning part(LatticeGeometry({4, 4, 4, 8}), {1, 1, 2, 2});
  NeighborTable nt(part.local(), part.partitioned_dims(), 1);
  DomainMap map(part);
  const WilsonField<double> global = gaussian_wilson_source(part.global(), 77);
  std::vector<WilsonField<double>> locals;
  map.scatter(global, locals);

  ScopedGhostPrec prec(c.prec);
  ScopedGhostRecon recon("min");
  ASSERT_EQ(default_wire_format<HalfSpinor<double>>().recon, WireRecon::Unit);
  auto run = [&](RankMode m) {
    ScopedRankMode scoped(m);
    std::vector<GhostZones<HalfSpinor<double>>> ghosts(
        static_cast<std::size_t>(part.num_ranks()),
        GhostZones<HalfSpinor<double>>(nt));
    exchange_ghosts<WilsonProjectPacker<double>>(part, nt, locals, ghosts,
                                                 nullptr, c.parity);
    return ghosts;
  };
  const auto seq = run(RankMode::Seq);
  const auto thr = run(RankMode::Threads);
  const auto seq_again = run(RankMode::Seq);
  for (int r = 0; r < part.num_ranks(); ++r) {
    for (int mu = 0; mu < kNDim; ++mu) {
      if (!part.partitioned(mu)) continue;
      for (int dir = 0; dir < 2; ++dir) {
        const auto a = seq[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto b = thr[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto a2 = seq_again[static_cast<std::size_t>(r)].zone(mu, dir);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0)
            << "unit," << c.prec << " rank " << r << " mu " << mu << " dir "
            << dir;
        EXPECT_EQ(std::memcmp(a.data(), a2.data(), a.size_bytes()), 0)
            << "unit," << c.prec << " rank " << r << " mu " << mu << " dir "
            << dir;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionsAndParities, GhostWireUnitExchangeTest,
    ::testing::Values(ExchangeCase{"double", std::nullopt},
                      ExchangeCase{"double", Parity::Even},
                      ExchangeCase{"float", std::nullopt},
                      ExchangeCase{"half", std::nullopt},
                      ExchangeCase{"half", Parity::Odd}));

// ---------------------------------------------------------------------------
// Gauge-link ghost codec: 12/8-real compressed gauge faces.
// ---------------------------------------------------------------------------

TEST(GaugeWireCodec, SiteBytesMatchPackedRealCounts) {
  EXPECT_EQ(gauge_wire_site_bytes<double>(Reconstruct::None), 144u);
  EXPECT_EQ(gauge_wire_site_bytes<double>(Reconstruct::Twelve), 96u);
  EXPECT_EQ(gauge_wire_site_bytes<double>(Reconstruct::Eight), 64u);
  EXPECT_EQ(gauge_wire_site_bytes<float>(Reconstruct::Twelve), 48u);
}

/// Replaces every link of \p u by its recon-12 codec image, making the
/// field *exactly* row-2-reconstructible (hot links are unitary only up to
/// heatbath rounding).
void codec_unitarize(GaugeField<double>& u) {
  for (int mu = 0; mu < kNDim; ++mu) {
    for (std::int64_t s = 0; s < u.geometry().volume(); ++s) {
      u.link(mu, s) = decompress12(compress12(u.link(mu, s)));
    }
  }
}

TEST(GaugeWireCodec, Recon12BitwiseForCodecUnitarizedLinks) {
  const LatticeGeometry g({4, 4, 4, 8});
  GaugeField<double> u = hot_gauge(g, 95);
  codec_unitarize(u);
  std::vector<Matrix3<double>> links;
  for (std::int64_t s = 0; s < g.volume(); ++s) links.push_back(u.link(0, s));

  std::vector<unsigned char> wire;
  encode_gauge_face<double>(std::span<const Matrix3<double>>(links),
                            Reconstruct::Twelve, wire);
  ASSERT_EQ(wire.size(), links.size() * 96u);
  std::vector<Matrix3<double>> decoded(links.size());
  decode_gauge_face<double>(std::span<const unsigned char>(wire),
                            Reconstruct::Twelve,
                            std::span<Matrix3<double>>(decoded));
  EXPECT_EQ(std::memcmp(decoded.data(), links.data(),
                        links.size() * sizeof(Matrix3<double>)),
            0);

  // Recon-8 re-derives rows 1-2 from the orthonormal frame: exact only up
  // to rounding, so bound it instead.
  encode_gauge_face<double>(std::span<const Matrix3<double>>(links),
                            Reconstruct::Eight, wire);
  ASSERT_EQ(wire.size(), links.size() * 64u);
  decode_gauge_face<double>(std::span<const unsigned char>(wire),
                            Reconstruct::Eight,
                            std::span<Matrix3<double>>(decoded));
  for (std::size_t i = 0; i < links.size(); ++i) {
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_LE(std::abs(decoded[i](r, c) - links[i](r, c)), 1e-10)
            << "link " << i;
      }
    }
  }
}

TEST(GaugeWireCodec, GhostExchangeRecon12MatchesUncompressedBitwise) {
  const LatticeGeometry g({4, 4, 4, 8});
  GaugeField<double> u = hot_gauge(g, 96);
  codec_unitarize(u);
  Partitioning part(g, {1, 1, 2, 2});
  NeighborTable nt(part.local(), part.partitioned_dims(), 1);
  DomainMap map(part);
  std::vector<GaugeField<double>> locals;
  map.scatter_gauge(u, locals);

  auto run = [&](std::optional<Reconstruct> wire, ExchangeCounters* counters) {
    std::vector<GhostZones<Matrix3<double>>> ghosts(
        static_cast<std::size_t>(part.num_ranks()),
        GhostZones<Matrix3<double>>(nt));
    exchange_gauge_ghosts(part, nt, locals, ghosts, counters, -1, wire);
    return ghosts;
  };

  ExchangeCounters raw_c, r12_c, r8_c;
  const auto raw = run(Reconstruct::None, &raw_c);
  const auto r12 = run(Reconstruct::Twelve, &r12_c);
  const auto r8 = run(Reconstruct::Eight, &r8_c);

  for (int r = 0; r < part.num_ranks(); ++r) {
    for (int mu = 0; mu < kNDim; ++mu) {
      if (!part.partitioned(mu)) continue;
      const auto a = raw[static_cast<std::size_t>(r)].zone(mu, 1);
      const auto b = r12[static_cast<std::size_t>(r)].zone(mu, 1);
      const auto c8 = r8[static_cast<std::size_t>(r)].zone(mu, 1);
      // Recon-12 halos are bitwise the uncompressed halos: row 2 of a
      // codec-unitarized link reconstructs exactly.
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0)
          << "rank " << r << " mu " << mu;
      for (std::size_t i = 0; i < a.size(); ++i) {
        for (int row = 0; row < 3; ++row) {
          for (int col = 0; col < 3; ++col) {
            EXPECT_LE(std::abs(c8[i](row, col) - a[i](row, col)), 1e-10);
          }
        }
      }
    }
  }

  // Byte metering prices the compressed wire, not the stored halo.
  for (int mu = 0; mu < kNDim; ++mu) {
    std::uint64_t fv = 0;
    if (part.partitioned(mu)) {
      fv = static_cast<std::uint64_t>(part.local().volume() /
                                      part.local().dim(mu));
    }
    const std::uint64_t n = static_cast<std::uint64_t>(part.num_ranks()) * fv;
    const auto m = static_cast<std::size_t>(mu);
    EXPECT_EQ(raw_c.bytes_by_dim[m], n * 144u) << "mu " << mu;
    EXPECT_EQ(r12_c.bytes_by_dim[m], n * 96u) << "mu " << mu;
    EXPECT_EQ(r8_c.bytes_by_dim[m], n * 64u) << "mu " << mu;
  }
}

// ---------------------------------------------------------------------------
// Operator level: the wire policy composes with every gauge reconstruction
// format, stays bitwise deterministic across rank modes, and is lossless
// (exact single-domain agreement) above half.
// ---------------------------------------------------------------------------

struct OpCase {
  const char* prec;
  Reconstruct recon;
};

class GhostWireOperatorTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GhostWireOperatorTest, PartitionedWilsonAcrossReconFormats) {
  const OpCase c = GetParam();
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 75);
  const double mass = -0.1;
  Partitioning part(g, {1, 1, 2, 2});
  const WilsonField<double> in = gaussian_wilson_source(g, 76);

  WilsonField<double> ref(g);
  WilsonCloverOperator<double> ref_op(u, nullptr, mass);
  ref_op.apply(ref, in);

  ScopedGhostPrec env(c.prec);
  ScopedGhostRecon recon_env(nullptr);  // precision axis only, full recon
  PartitionedWilsonClover<double> op(part, u, nullptr, mass, /*comms=*/true,
                                     c.recon);

  WilsonField<double> seq_out(g), thr_out(g), seq_rerun(g);
  {
    ScopedRankMode scoped(RankMode::Seq);
    op.apply(seq_out, in);
    op.apply(seq_rerun, in);
  }
  {
    ScopedRankMode scoped(RankMode::Threads);
    op.apply(thr_out, in);
  }
  EXPECT_EQ(std::memcmp(seq_out.sites().data(), thr_out.sites().data(),
                        seq_out.sites().size_bytes()),
            0)
      << "seq != threads at " << c.prec;
  EXPECT_EQ(std::memcmp(seq_out.sites().data(), seq_rerun.sites().data(),
                        seq_out.sites().size_bytes()),
            0)
      << "rerun differs at " << c.prec;

  WilsonField<double> diff = seq_out;
  axpy(-1.0, ref, diff);
  if (std::string(c.prec) == "half") {
    // The truncation perturbs only the face terms; the relative error of
    // the full stencil stays well under the quantization step.
    EXPECT_LT(std::sqrt(norm2(diff) / norm2(ref)), 1e-4);
    EXPECT_GT(norm2(diff), 0.0);  // compression genuinely happened
  } else if (std::string(c.prec) == "float") {
    // Float wire: one fp32 cast on the face terms (~1e-8 relative) plus
    // whatever the reconstruction format costs — far under the half step.
    EXPECT_LT(std::sqrt(norm2(diff) / norm2(ref)), 1e-6);
  } else {
    // Double wire is a memcpy: any deviation from the single-domain
    // reference is the partitioned interior/exterior summation-order
    // roundoff (plus reconstruction roundoff), same as the uncompressed
    // partitioned-operator equivalence bound.
    EXPECT_LT(std::sqrt(norm2(diff) / norm2(ref)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionsAndRecon, GhostWireOperatorTest,
    ::testing::Values(OpCase{"double", Reconstruct::None},
                      OpCase{"double", Reconstruct::Twelve},
                      OpCase{"double", Reconstruct::Eight},
                      OpCase{"float", Reconstruct::None},
                      OpCase{"float", Reconstruct::Twelve},
                      OpCase{"float", Reconstruct::Eight},
                      OpCase{"half", Reconstruct::None},
                      OpCase{"half", Reconstruct::Twelve},
                      OpCase{"half", Reconstruct::Eight}));

// ---------------------------------------------------------------------------
// Byte metering: exact wire-byte accounting per (precision, action, face)
// and the compression acceptance bound.
// ---------------------------------------------------------------------------

TEST(GhostWireBytes, MeteredBytesMatchWireFormulaPerFace) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 81);
  Partitioning part(g, {1, 1, 2, 2});
  const WilsonField<double> in = gaussian_wilson_source(g, 82);

  // Staggered long links reach three sites: partitioned extents >= 4.
  const LatticeGeometry sg({4, 4, 8, 8});
  const GaugeField<double> su = hot_gauge(sg, 84);
  Partitioning spart(sg, {1, 1, 2, 2});
  const AsqtadLinks links = build_asqtad_links(su);
  const StaggeredField<double> sin_ = gaussian_staggered_source(sg, 83);

  ScopedGhostRecon recon_env(nullptr);  // full-recon formulas under test
  struct Expect {
    const char* prec;
    Precision wire;
  };
  for (const Expect e : {Expect{"double", Precision::Double},
                         Expect{"float", Precision::Single},
                         Expect{"half", Precision::Half}}) {
    ScopedGhostPrec env(e.prec);

    // Wilson: depth-1 spin-projected half-spinor faces.
    PartitionedWilsonClover<double> wop(part, u, nullptr, -0.1);
    ASSERT_EQ(wop.ghost_precision(), e.wire);
    WilsonField<double> wout(g);
    wop.apply(wout, in);
    const std::uint64_t wsite = wire_site_bytes<HalfSpinor<double>>(e.wire);
    for (int mu = 0; mu < kNDim; ++mu) {
      std::uint64_t expect = 0;
      if (part.partitioned(mu)) {
        const std::uint64_t fv = static_cast<std::uint64_t>(
            part.local().volume() / part.local().dim(mu));
        expect = static_cast<std::uint64_t>(part.num_ranks()) * 2u * fv * wsite;
      }
      EXPECT_EQ(wop.traffic().spinor.bytes_by_dim[static_cast<std::size_t>(mu)],
                expect)
          << e.prec << " wilson mu=" << mu;
    }

    // Staggered: depth-3 color-vector faces (3 packed sites per face site).
    PartitionedStaggered<double> sop(spart, links.fat, links.lng, 0.05);
    ASSERT_EQ(sop.ghost_precision(), e.wire);
    StaggeredField<double> sout(sg);
    sop.apply(sout, sin_);
    const std::uint64_t ssite = wire_site_bytes<ColorVector<double>>(e.wire);
    for (int mu = 0; mu < kNDim; ++mu) {
      std::uint64_t expect = 0;
      if (spart.partitioned(mu)) {
        const std::uint64_t fv = static_cast<std::uint64_t>(
            spart.local().volume() / spart.local().dim(mu));
        expect = static_cast<std::uint64_t>(spart.num_ranks()) * 2u * 3u * fv *
                 ssite;
      }
      EXPECT_EQ(sop.traffic().spinor.bytes_by_dim[static_cast<std::size_t>(mu)],
                expect)
          << e.prec << " staggered mu=" << mu;
    }
  }
}

TEST(GhostWireBytes, HalfSpinorFacesWithinThirtyPercentOfDouble) {
  // The acceptance bound of the compressed wire: half spinor faces must
  // cost <= 30% of the double baseline (format: 28 vs 96 bytes = 29.2%).
  const double ratio =
      static_cast<double>(wire_site_bytes<HalfSpinor<double>>(Precision::Half)) /
      static_cast<double>(
          wire_site_bytes<HalfSpinor<double>>(Precision::Double));
  EXPECT_LE(ratio, 0.30);

  // And the same bound must hold for the bytes the exchange actually
  // meters on a partitioned Wilson hop, not just the per-site format.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 85);
  Partitioning part(g, {1, 1, 2, 2});
  const WilsonField<double> in = gaussian_wilson_source(g, 86);
  WilsonField<double> out(g);

  std::uint64_t bytes_double = 0, bytes_half = 0;
  ScopedGhostRecon recon_env(nullptr);  // the full-recon envelope's bound
  {
    ScopedGhostPrec env("double");
    PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
    op.apply(out, in);
    bytes_double = op.traffic().spinor.total_bytes();
  }
  {
    ScopedGhostPrec env("half");
    PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
    op.apply(out, in);
    bytes_half = op.traffic().spinor.total_bytes();
  }
  ASSERT_GT(bytes_double, 0u);
  EXPECT_LE(static_cast<double>(bytes_half),
            0.30 * static_cast<double>(bytes_double));
}

// ---------------------------------------------------------------------------
// Chaos: a fault-repaired exchange re-sends the identical compressed
// payload, so the repaired result is bitwise equal to the fault-free run
// and the retry is metered.
// ---------------------------------------------------------------------------

TEST(GhostWireChaos, RepairedBitFlipTransparentUnderHalfWire) {
  ScopedRankMode mode(RankMode::Threads);
  ScopedGhostPrec env("half");
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 91);
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 92);

  clear_fault_plan();
  WilsonField<double> expect(g);
  op.apply(expect, in);  // fault-free half-wire reference

  FaultSpec spec;
  spec.seed = 6;
  spec.once[static_cast<int>(FaultKind::BitFlip)] = 2;  // corrupt one message
  spec.recv_timeout = microseconds(50000);
  spec.max_retries = 4;
  spec.backoff = microseconds(100);
  set_fault_plan(spec);
  const std::uint64_t retries_before = metric_counter("comm.retries").value();

  WilsonField<double> got(g);
  op.apply(got, in);
  clear_fault_plan();

  // The flip lands on the encoded wire bytes; the envelope checksum (also
  // computed over the wire bytes) catches it, and the retry re-encodes the
  // same faces into the same payload — bitwise-identical result.
  EXPECT_EQ(std::memcmp(expect.sites().data(), got.sites().data(),
                        expect.sites().size_bytes()),
            0);
  EXPECT_GE(metric_counter("comm.retries").value(), retries_before + 1);
}

TEST(GhostWireChaos, RepairedBitFlipTransparentUnderUnitHalfWire) {
  // Same contract at the fully compressed (unit, half) wire: the unit
  // encode is a pure per-site function, so the repaired retry re-sends
  // the identical payload and the run is bitwise the fault-free run.
  ScopedRankMode mode(RankMode::Threads);
  ScopedGhostPrec prec("half");
  ScopedGhostRecon recon("min");
  const LatticeGeometry g({4, 4, 4, 8});
  GaugeField<double> u = hot_gauge(g, 97);
  codec_unitarize(u);  // gauge ghosts travel recon-12 under min
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  ASSERT_EQ(op.ghost_wire(),
            WireFormat(Precision::Half, WireRecon::Unit));
  const WilsonField<double> in = gaussian_wilson_source(g, 98);

  clear_fault_plan();
  WilsonField<double> expect(g);
  op.apply(expect, in);

  FaultSpec spec;
  spec.seed = 7;
  spec.once[static_cast<int>(FaultKind::BitFlip)] = 2;
  spec.recv_timeout = microseconds(50000);
  spec.max_retries = 4;
  spec.backoff = microseconds(100);
  set_fault_plan(spec);
  const std::uint64_t retries_before = metric_counter("comm.retries").value();

  WilsonField<double> got(g);
  op.apply(got, in);
  clear_fault_plan();

  EXPECT_EQ(std::memcmp(expect.sites().data(), got.sites().data(),
                        expect.sites().size_bytes()),
            0);
  EXPECT_GE(metric_counter("comm.retries").value(), retries_before + 1);
}

// ---------------------------------------------------------------------------
// Operator level at the unit recon: determinism across rank modes and
// accuracy against the single-domain reference, per wire precision.
// ---------------------------------------------------------------------------

class GhostWireUnitOperatorTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(GhostWireUnitOperatorTest, PartitionedWilsonUnderUnitRecon) {
  const char* prec = GetParam();
  const LatticeGeometry g({4, 4, 4, 8});
  GaugeField<double> u = hot_gauge(g, 101);
  codec_unitarize(u);  // keeps the recon-12 gauge halos bitwise
  const double mass = -0.1;
  Partitioning part(g, {1, 1, 2, 2});
  const WilsonField<double> in = gaussian_wilson_source(g, 102);

  WilsonField<double> ref(g);
  WilsonCloverOperator<double> ref_op(u, nullptr, mass);
  ref_op.apply(ref, in);

  ScopedGhostPrec penv(prec);
  ScopedGhostRecon renv("min");
  PartitionedWilsonClover<double> op(part, u, nullptr, mass);
  EXPECT_EQ(op.ghost_wire().recon, WireRecon::Unit);

  WilsonField<double> seq_out(g), thr_out(g), seq_rerun(g);
  {
    ScopedRankMode scoped(RankMode::Seq);
    op.apply(seq_out, in);
    op.apply(seq_rerun, in);
  }
  {
    ScopedRankMode scoped(RankMode::Threads);
    op.apply(thr_out, in);
  }
  EXPECT_EQ(std::memcmp(seq_out.sites().data(), thr_out.sites().data(),
                        seq_out.sites().size_bytes()),
            0)
      << "seq != threads at unit," << prec;
  EXPECT_EQ(std::memcmp(seq_out.sites().data(), seq_rerun.sites().data(),
                        seq_out.sites().size_bytes()),
            0)
      << "rerun differs at unit," << prec;

  WilsonField<double> diff = seq_out;
  axpy(-1.0, ref, diff);
  const double rel = std::sqrt(norm2(diff) / norm2(ref));
  EXPECT_GT(norm2(diff), 0.0);  // the unit form is lossy at every precision
  if (std::string(prec) == "half") {
    // Face terms carry the int16 unit-direction quantization plus the
    // unitarity-recovery accumulation on the dropped component.
    EXPECT_LT(rel, 1e-3);
  } else {
    // double/float unit wires stage through fp32 (SC'11 transfer path):
    // the face error is the fp32 cast, far under the half step.
    EXPECT_LT(rel, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, GhostWireUnitOperatorTest,
                         ::testing::Values("double", "float", "half"));

// ---------------------------------------------------------------------------
// Byte metering at the unit formats, and the joint-tune cache round trip.
// ---------------------------------------------------------------------------

TEST(GhostWireBytes, MeteredBytesMatchUnitFormulaPerFace) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 103);
  Partitioning part(g, {1, 1, 2, 2});
  const WilsonField<double> in = gaussian_wilson_source(g, 104);

  const LatticeGeometry sg({4, 4, 8, 8});
  const GaugeField<double> su = hot_gauge(sg, 105);
  Partitioning spart(sg, {1, 1, 2, 2});
  const AsqtadLinks links = build_asqtad_links(su);
  const StaggeredField<double> sin_ = gaussian_staggered_source(sg, 106);

  ScopedGhostRecon renv("min");
  struct Expect {
    const char* prec;
    Precision wire;
  };
  for (const Expect e : {Expect{"double", Precision::Double},
                         Expect{"float", Precision::Single},
                         Expect{"half", Precision::Half}}) {
    ScopedGhostPrec penv(e.prec);
    const WireFormat fmt(e.wire, WireRecon::Unit);

    PartitionedWilsonClover<double> wop(part, u, nullptr, -0.1);
    ASSERT_EQ(wop.ghost_wire(), fmt);
    WilsonField<double> wout(g);
    wop.apply(wout, in);
    const std::uint64_t wsite = wire_site_bytes<HalfSpinor<double>>(fmt);
    for (int mu = 0; mu < kNDim; ++mu) {
      std::uint64_t expect = 0;
      if (part.partitioned(mu)) {
        const std::uint64_t fv = static_cast<std::uint64_t>(
            part.local().volume() / part.local().dim(mu));
        expect = static_cast<std::uint64_t>(part.num_ranks()) * 2u * fv * wsite;
      }
      EXPECT_EQ(wop.traffic().spinor.bytes_by_dim[static_cast<std::size_t>(mu)],
                expect)
          << "unit," << e.prec << " wilson mu=" << mu;
    }

    PartitionedStaggered<double> sop(spart, links.fat, links.lng, 0.05);
    ASSERT_EQ(sop.ghost_wire(), fmt);
    StaggeredField<double> sout(sg);
    sop.apply(sout, sin_);
    const std::uint64_t ssite = wire_site_bytes<ColorVector<double>>(fmt);
    for (int mu = 0; mu < kNDim; ++mu) {
      std::uint64_t expect = 0;
      if (spart.partitioned(mu)) {
        const std::uint64_t fv = static_cast<std::uint64_t>(
            spart.local().volume() / spart.local().dim(mu));
        expect = static_cast<std::uint64_t>(spart.num_ranks()) * 2u * 3u * fv *
                 ssite;
      }
      EXPECT_EQ(sop.traffic().spinor.bytes_by_dim[static_cast<std::size_t>(mu)],
                expect)
          << "unit," << e.prec << " staggered mu=" << mu;
    }
  }
}

TEST(GhostWireTune, JointWinnerPersistsAcrossCacheSaveLoad) {
  // LQCD_GHOST_PREC=tune x LQCD_GHOST_RECON=tune sweeps the joint
  // (recon, precision) pairs as one policy tunable and records the winner
  // under `wilson_part_ghost_wire`; the row must survive a tunecache
  // save/load round trip and answer the second construction from cache.
  set_tuning_enabled(true);
  ScopedGhostPrec penv("tune");
  ScopedGhostRecon renv("tune");
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 107);
  Partitioning part(g, {1, 1, 2, 2});

  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WireFormat winner = op.ghost_wire();

  TuneKey key;
  bool found = false;
  for (const auto& [k, v] : global_tune_cache().entries()) {
    if (k.kernel == "wilson_part_ghost_wire") {
      key = k;
      found = true;
      EXPECT_EQ(v.param, "wire=" + to_string(winner));
    }
  }
  ASSERT_TRUE(found) << "no wilson_part_ghost_wire row was recorded";

  const std::string path = ::testing::TempDir() + "ghost_wire_tune.tsv";
  ASSERT_TRUE(global_tune_cache().save(path));
  TuneCache loaded;
  ASSERT_TRUE(loaded.load(path));
  const auto hit = loaded.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->param, "wire=" + to_string(winner));

  // A second operator under the same env resolves from the cache (no
  // re-tune) to the same joint format.
  const TuneCacheStats before = global_tune_cache().stats();
  PartitionedWilsonClover<double> op2(part, u, nullptr, -0.1);
  EXPECT_EQ(op2.ghost_wire(), winner);
  const TuneCacheStats after = global_tune_cache().stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

}  // namespace
}  // namespace lqcd
