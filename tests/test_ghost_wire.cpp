// Precision-truncated ghost wire (comm/wire.h, LQCD_GHOST_PREC): the
// pack -> encode -> wire -> decode -> scatter round trip across all three
// wire precisions, both actions and parity restrictions; exact byte
// metering against wire_site_bytes; the <= 30% compression acceptance
// bound of the half wire; seq==threads bitwise determinism at every
// precision; and chaos-repair stability (a retried send reproduces the
// identical compressed payload, so the repaired result is bitwise equal
// to the fault-free run).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "comm/domain_map.h"
#include "comm/exchange.h"
#include "comm/virtual_cluster.h"
#include "comm/wire.h"
#include "dirac/partitioned.h"
#include "dirac/wilson_ops.h"
#include "fault/fault.h"
#include "fields/blas.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "linalg/half.h"
#include "obs/metrics.h"

namespace lqcd {
namespace {

using std::chrono::microseconds;

/// Restores the rank mode on scope exit.
class ScopedRankMode {
 public:
  explicit ScopedRankMode(RankMode m) : prev_(rank_mode()) { set_rank_mode(m); }
  ~ScopedRankMode() { set_rank_mode(prev_); }

 private:
  RankMode prev_;
};

/// Forces LQCD_GHOST_PREC for the scope (re-reading the policy), and
/// restores the previous environment — and policy — on exit.
class ScopedGhostPrec {
 public:
  explicit ScopedGhostPrec(const char* value) {
    const char* prev = std::getenv("LQCD_GHOST_PREC");
    had_prev_ = prev != nullptr;
    if (had_prev_) saved_ = prev;
    if (value != nullptr) {
      setenv("LQCD_GHOST_PREC", value, 1);
    } else {
      unsetenv("LQCD_GHOST_PREC");
    }
    init_ghost_prec_from_env();
  }
  ~ScopedGhostPrec() {
    if (had_prev_) {
      setenv("LQCD_GHOST_PREC", saved_.c_str(), 1);
    } else {
      unsetenv("LQCD_GHOST_PREC");
    }
    init_ghost_prec_from_env();
  }

 private:
  bool had_prev_ = false;
  std::string saved_;
};

// ---------------------------------------------------------------------------
// Wire codec unit properties.
// ---------------------------------------------------------------------------

TEST(WireCodec, SiteBytesMatchEnvelopeFormat) {
  // Wilson spin-projected face site: 12 reals.
  EXPECT_EQ(wire_site_bytes<HalfSpinor<double>>(Precision::Double), 96u);
  EXPECT_EQ(wire_site_bytes<HalfSpinor<double>>(Precision::Single), 48u);
  // Half envelope: 4-byte norm + 12 int16 payload.
  EXPECT_EQ(wire_site_bytes<HalfSpinor<double>>(Precision::Half), 28u);
  // Staggered color-vector face site: 6 reals.
  EXPECT_EQ(wire_site_bytes<ColorVector<double>>(Precision::Double), 48u);
  EXPECT_EQ(wire_site_bytes<ColorVector<double>>(Precision::Single), 24u);
  EXPECT_EQ(wire_site_bytes<ColorVector<double>>(Precision::Half), 16u);
  // At the native precision the wire is the raw site (memcpy fast path).
  EXPECT_EQ(wire_site_bytes<HalfSpinor<double>>(Precision::Double),
            sizeof(HalfSpinor<double>));
  EXPECT_EQ(wire_site_bytes<HalfSpinor<float>>(Precision::Single),
            sizeof(HalfSpinor<float>));
}

TEST(WireCodec, ClampNeverUpcastsBeyondNative) {
  // A float-native ghost cannot widen to a double wire...
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<float>>(Precision::Double),
            Precision::Single);
  EXPECT_EQ(clamp_wire_precision<ColorVector<float>>(Precision::Double),
            Precision::Single);
  // ...but any narrowing request passes through unchanged.
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<double>>(Precision::Double),
            Precision::Double);
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<double>>(Precision::Single),
            Precision::Single);
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<double>>(Precision::Half),
            Precision::Half);
  EXPECT_EQ(clamp_wire_precision<HalfSpinor<float>>(Precision::Half),
            Precision::Half);
}

TEST(WireCodec, EnvPolicyContract) {
  {
    ScopedGhostPrec env("half");
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Half);
    EXPECT_FALSE(ghost_prec_setting().tune);
  }
  {
    ScopedGhostPrec env("float");
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Single);
    EXPECT_EQ(default_wire_precision<ColorVector<float>>(), Precision::Single);
  }
  {
    ScopedGhostPrec env("double");
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Double);
    // Clamped at the float-native ghost: no upcast.
    EXPECT_EQ(default_wire_precision<HalfSpinor<float>>(), Precision::Single);
  }
  {
    ScopedGhostPrec env("tune");
    EXPECT_TRUE(ghost_prec_setting().tune);
    // tune resolves per-operator; the bare default stays native.
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Double);
  }
  {
    ScopedGhostPrec env("bogus");  // warns, stays native
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Double);
    EXPECT_FALSE(ghost_prec_setting().tune);
  }
  {
    ScopedGhostPrec env(nullptr);
    EXPECT_EQ(default_wire_precision<HalfSpinor<double>>(), Precision::Double);
  }
}

std::vector<HalfSpinor<double>> fuzz_faces(std::uint64_t seed, std::size_t n) {
  // Deterministic pseudo-random face payloads, including exact zeros (the
  // parity holes of a parity-restricted pack) and large-magnitude sites.
  std::vector<HalfSpinor<double>> faces(n);
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<double>(static_cast<std::int64_t>(s >> 12)) / (1ll << 51);
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) continue;  // leave value-initialized zero sites in
    const double scale = i % 5 == 0 ? 1e4 : 1.0;
    for (int sp = 0; sp < 2; ++sp) {
      for (int c = 0; c < 3; ++c) {
        faces[i].h[sp].c[c] = Cplx<double>(next() * scale, next() * scale);
      }
    }
  }
  return faces;
}

TEST(WireCodec, RoundTripLosslessAtDoubleAndFloat) {
  const std::vector<HalfSpinor<double>> ref = fuzz_faces(11, 64);
  std::vector<unsigned char> scratch;

  // Double wire on a double ghost is the native memcpy fast path:
  // bit-exact identity on arbitrary payloads.
  std::vector<HalfSpinor<double>> faces = ref;
  wire_roundtrip_face<HalfSpinor<double>>(std::span<HalfSpinor<double>>(faces),
                                          Precision::Double, scratch);
  EXPECT_EQ(std::memcmp(faces.data(), ref.data(),
                        faces.size() * sizeof(HalfSpinor<double>)),
            0);

  // Float wire: the first trip truncates to fp32 (bounded, tiny); every
  // further trip is bit-exact identity — the wire is lossless on its own
  // image, so repeated exchanges (and chaos re-sends) cannot drift.
  faces = ref;
  wire_roundtrip_face<HalfSpinor<double>>(std::span<HalfSpinor<double>>(faces),
                                          Precision::Single, scratch);
  for (std::size_t i = 0; i < faces.size(); ++i) {
    for (int sp = 0; sp < 2; ++sp) {
      for (int c = 0; c < 3; ++c) {
        const Cplx<double> got = faces[i].h[sp].c[c];
        const Cplx<double> want = ref[i].h[sp].c[c];
        EXPECT_LE(std::abs(got - want), 1e-7 * (1.0 + std::abs(want)))
            << "site " << i;
      }
    }
  }
  const std::vector<HalfSpinor<double>> once = faces;
  wire_roundtrip_face<HalfSpinor<double>>(std::span<HalfSpinor<double>>(faces),
                                          Precision::Single, scratch);
  EXPECT_EQ(std::memcmp(faces.data(), once.data(),
                        faces.size() * sizeof(HalfSpinor<double>)),
            0);
}

TEST(WireCodec, HalfRoundTripDeterministicAndBounded) {
  std::vector<HalfSpinor<double>> faces = fuzz_faces(13, 64);
  const std::vector<HalfSpinor<double>> ref = faces;

  std::vector<unsigned char> wire_a, wire_b;
  encode_face<HalfSpinor<double>>(std::span<const HalfSpinor<double>>(faces),
                                  Precision::Half, wire_a);
  encode_face<HalfSpinor<double>>(std::span<const HalfSpinor<double>>(faces),
                                  Precision::Half, wire_b);
  ASSERT_EQ(wire_a.size(), faces.size() * 28u);
  // Same input -> same bytes, run to run: the determinism contract the
  // chaos-repair path (identical re-sent payloads) rests on.
  EXPECT_EQ(wire_a, wire_b);

  decode_face<HalfSpinor<double>>(std::span<const unsigned char>(wire_a),
                                  Precision::Half,
                                  std::span<HalfSpinor<double>>(faces));
  for (std::size_t i = 0; i < faces.size(); ++i) {
    float norm = 0.0f;
    for (int sp = 0; sp < 2; ++sp) {
      for (int c = 0; c < 3; ++c) {
        norm = std::max(
            norm, std::fabs(static_cast<float>(ref[i].h[sp].c[c].real())));
        norm = std::max(
            norm, std::fabs(static_cast<float>(ref[i].h[sp].c[c].imag())));
      }
    }
    const double bound =
        static_cast<double>(half_error_bound(norm == 0.0f ? 1.0f : norm)) +
        1e-12;
    for (int sp = 0; sp < 2; ++sp) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_LE(std::fabs(faces[i].h[sp].c[c].real() -
                            ref[i].h[sp].c[c].real()),
                  bound)
            << "site " << i;
        EXPECT_LE(std::fabs(faces[i].h[sp].c[c].imag() -
                            ref[i].h[sp].c[c].imag()),
                  bound)
            << "site " << i;
      }
    }
    // Exact zero sites decode exactly (norm forced to 1 at encode).
    if (i % 7 == 3) {
      EXPECT_EQ(std::memcmp(&faces[i], &ref[i], sizeof(faces[i])), 0);
    }
  }

  // Re-encoding the decoded values reproduces the identical wire image:
  // the codec is idempotent past the first quantization, so a repaired
  // exchange can never ratchet precision away.
  std::vector<unsigned char> wire_c;
  encode_face<HalfSpinor<double>>(std::span<const HalfSpinor<double>>(faces),
                                  Precision::Half, wire_c);
  decode_face<HalfSpinor<double>>(std::span<const unsigned char>(wire_c),
                                  Precision::Half,
                                  std::span<HalfSpinor<double>>(faces));
  std::vector<unsigned char> wire_d;
  encode_face<HalfSpinor<double>>(std::span<const HalfSpinor<double>>(faces),
                                  Precision::Half, wire_d);
  EXPECT_EQ(wire_c, wire_d);
}

// ---------------------------------------------------------------------------
// Property fuzz: the full exchange round trip across wire precision x
// action x parity restriction, in both rank modes.
// ---------------------------------------------------------------------------

struct ExchangeCase {
  const char* prec;        // LQCD_GHOST_PREC value
  std::optional<Parity> parity;
};

class GhostWireExchangeTest : public ::testing::TestWithParam<ExchangeCase> {};

TEST_P(GhostWireExchangeTest, WilsonFacesSeqThreadsBitwiseAndLossless) {
  const ExchangeCase c = GetParam();
  Partitioning part(LatticeGeometry({4, 4, 4, 8}), {1, 1, 2, 2});
  NeighborTable nt(part.local(), part.partitioned_dims(), 1);
  DomainMap map(part);
  const WilsonField<double> global = gaussian_wilson_source(part.global(), 71);
  std::vector<WilsonField<double>> locals;
  map.scatter(global, locals);

  auto run = [&](RankMode m) {
    ScopedRankMode scoped(m);
    std::vector<GhostZones<HalfSpinor<double>>> ghosts(
        static_cast<std::size_t>(part.num_ranks()),
        GhostZones<HalfSpinor<double>>(nt));
    exchange_ghosts<WilsonProjectPacker<double>>(part, nt, locals, ghosts,
                                                 nullptr, c.parity);
    return ghosts;
  };

  // Baseline at the default (native, lossless) wire.
  std::vector<GhostZones<HalfSpinor<double>>> baseline;
  {
    ScopedGhostPrec env(nullptr);
    baseline = run(RankMode::Seq);
  }

  ScopedGhostPrec env(c.prec);
  const auto seq = run(RankMode::Seq);
  const auto thr = run(RankMode::Threads);
  const auto seq_again = run(RankMode::Seq);
  const bool lossless = std::string(c.prec) != "half";

  for (int r = 0; r < part.num_ranks(); ++r) {
    for (int mu = 0; mu < kNDim; ++mu) {
      if (!part.partitioned(mu)) continue;
      for (int dir = 0; dir < 2; ++dir) {
        const auto a = seq[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto b = thr[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto a2 = seq_again[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto base = baseline[static_cast<std::size_t>(r)].zone(mu, dir);
        ASSERT_EQ(a.size(), b.size());
        // Determinism: seq == threads, and run == rerun, at every
        // precision — the truncation is a pure function of the payload.
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0)
            << c.prec << " rank " << r << " mu " << mu << " dir " << dir;
        EXPECT_EQ(std::memcmp(a.data(), a2.data(), a.size_bytes()), 0)
            << c.prec << " rank " << r << " mu " << mu << " dir " << dir;
        if (lossless) {
          // double/float wires are lossless for double-precision spinors
          // projected into them... float only up to the fp32 cast, so
          // assert value equality with the exact-bits baseline only for
          // "double"; for "float" bound the cast error instead.
          if (std::string(c.prec) == "double") {
            EXPECT_EQ(std::memcmp(a.data(), base.data(), a.size_bytes()), 0)
                << "rank " << r << " mu " << mu << " dir " << dir;
          } else {
            for (std::size_t i = 0; i < a.size(); ++i) {
              for (int sp = 0; sp < 2; ++sp) {
                for (int cc = 0; cc < 3; ++cc) {
                  const Cplx<double> got = a[i].h[sp].c[cc];
                  const Cplx<double> want = base[i].h[sp].c[cc];
                  EXPECT_EQ(got.real(), static_cast<double>(static_cast<float>(
                                            want.real())));
                  EXPECT_EQ(got.imag(), static_cast<double>(static_cast<float>(
                                            want.imag())));
                }
              }
            }
          }
        } else {
          // Half: bounded by the per-site norm quantization step.
          for (std::size_t i = 0; i < a.size(); ++i) {
            float norm = 0.0f;
            for (int sp = 0; sp < 2; ++sp) {
              for (int cc = 0; cc < 3; ++cc) {
                norm = std::max(norm, std::fabs(static_cast<float>(
                                          base[i].h[sp].c[cc].real())));
                norm = std::max(norm, std::fabs(static_cast<float>(
                                          base[i].h[sp].c[cc].imag())));
              }
            }
            const double bound =
                static_cast<double>(
                    half_error_bound(norm == 0.0f ? 1.0f : norm)) +
                1e-12;
            for (int sp = 0; sp < 2; ++sp) {
              for (int cc = 0; cc < 3; ++cc) {
                EXPECT_LE(std::fabs(a[i].h[sp].c[cc].real() -
                                    base[i].h[sp].c[cc].real()),
                          bound);
                EXPECT_LE(std::fabs(a[i].h[sp].c[cc].imag() -
                                    base[i].h[sp].c[cc].imag()),
                          bound);
              }
            }
          }
        }
      }
    }
  }
}

TEST_P(GhostWireExchangeTest, StaggeredFacesSeqThreadsBitwise) {
  const ExchangeCase c = GetParam();
  Partitioning part(LatticeGeometry({4, 4, 4, 8}), {1, 1, 2, 2});
  NeighborTable nt(part.local(), part.partitioned_dims(), 1);
  DomainMap map(part);
  const StaggeredField<double> global =
      gaussian_staggered_source(part.global(), 73);
  std::vector<StaggeredField<double>> locals;
  map.scatter(global, locals);

  ScopedGhostPrec env(c.prec);
  auto run = [&](RankMode m) {
    ScopedRankMode scoped(m);
    std::vector<GhostZones<ColorVector<double>>> ghosts(
        static_cast<std::size_t>(part.num_ranks()),
        GhostZones<ColorVector<double>>(nt));
    exchange_ghosts<IdentityPacker<ColorVector<double>>>(
        part, nt, locals, ghosts, nullptr, c.parity);
    return ghosts;
  };
  const auto seq = run(RankMode::Seq);
  const auto thr = run(RankMode::Threads);
  for (int r = 0; r < part.num_ranks(); ++r) {
    for (int mu = 0; mu < kNDim; ++mu) {
      if (!part.partitioned(mu)) continue;
      for (int dir = 0; dir < 2; ++dir) {
        const auto a = seq[static_cast<std::size_t>(r)].zone(mu, dir);
        const auto b = thr[static_cast<std::size_t>(r)].zone(mu, dir);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0)
            << c.prec << " rank " << r << " mu " << mu << " dir " << dir;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionsAndParities, GhostWireExchangeTest,
    ::testing::Values(ExchangeCase{"double", std::nullopt},
                      ExchangeCase{"double", Parity::Even},
                      ExchangeCase{"float", std::nullopt},
                      ExchangeCase{"float", Parity::Odd},
                      ExchangeCase{"half", std::nullopt},
                      ExchangeCase{"half", Parity::Even},
                      ExchangeCase{"half", Parity::Odd}));

// ---------------------------------------------------------------------------
// Operator level: the wire policy composes with every gauge reconstruction
// format, stays bitwise deterministic across rank modes, and is lossless
// (exact single-domain agreement) above half.
// ---------------------------------------------------------------------------

struct OpCase {
  const char* prec;
  Reconstruct recon;
};

class GhostWireOperatorTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GhostWireOperatorTest, PartitionedWilsonAcrossReconFormats) {
  const OpCase c = GetParam();
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 75);
  const double mass = -0.1;
  Partitioning part(g, {1, 1, 2, 2});
  const WilsonField<double> in = gaussian_wilson_source(g, 76);

  WilsonField<double> ref(g);
  WilsonCloverOperator<double> ref_op(u, nullptr, mass);
  ref_op.apply(ref, in);

  ScopedGhostPrec env(c.prec);
  PartitionedWilsonClover<double> op(part, u, nullptr, mass, /*comms=*/true,
                                     c.recon);

  WilsonField<double> seq_out(g), thr_out(g), seq_rerun(g);
  {
    ScopedRankMode scoped(RankMode::Seq);
    op.apply(seq_out, in);
    op.apply(seq_rerun, in);
  }
  {
    ScopedRankMode scoped(RankMode::Threads);
    op.apply(thr_out, in);
  }
  EXPECT_EQ(std::memcmp(seq_out.sites().data(), thr_out.sites().data(),
                        seq_out.sites().size_bytes()),
            0)
      << "seq != threads at " << c.prec;
  EXPECT_EQ(std::memcmp(seq_out.sites().data(), seq_rerun.sites().data(),
                        seq_out.sites().size_bytes()),
            0)
      << "rerun differs at " << c.prec;

  WilsonField<double> diff = seq_out;
  axpy(-1.0, ref, diff);
  if (std::string(c.prec) == "half") {
    // The truncation perturbs only the face terms; the relative error of
    // the full stencil stays well under the quantization step.
    EXPECT_LT(std::sqrt(norm2(diff) / norm2(ref)), 1e-4);
    EXPECT_GT(norm2(diff), 0.0);  // compression genuinely happened
  } else if (std::string(c.prec) == "float") {
    // Float wire: one fp32 cast on the face terms (~1e-8 relative) plus
    // whatever the reconstruction format costs — far under the half step.
    EXPECT_LT(std::sqrt(norm2(diff) / norm2(ref)), 1e-6);
  } else {
    // Double wire is a memcpy: any deviation from the single-domain
    // reference is the partitioned interior/exterior summation-order
    // roundoff (plus reconstruction roundoff), same as the uncompressed
    // partitioned-operator equivalence bound.
    EXPECT_LT(std::sqrt(norm2(diff) / norm2(ref)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionsAndRecon, GhostWireOperatorTest,
    ::testing::Values(OpCase{"double", Reconstruct::None},
                      OpCase{"double", Reconstruct::Twelve},
                      OpCase{"double", Reconstruct::Eight},
                      OpCase{"float", Reconstruct::None},
                      OpCase{"float", Reconstruct::Twelve},
                      OpCase{"float", Reconstruct::Eight},
                      OpCase{"half", Reconstruct::None},
                      OpCase{"half", Reconstruct::Twelve},
                      OpCase{"half", Reconstruct::Eight}));

// ---------------------------------------------------------------------------
// Byte metering: exact wire-byte accounting per (precision, action, face)
// and the compression acceptance bound.
// ---------------------------------------------------------------------------

TEST(GhostWireBytes, MeteredBytesMatchWireFormulaPerFace) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 81);
  Partitioning part(g, {1, 1, 2, 2});
  const WilsonField<double> in = gaussian_wilson_source(g, 82);

  // Staggered long links reach three sites: partitioned extents >= 4.
  const LatticeGeometry sg({4, 4, 8, 8});
  const GaugeField<double> su = hot_gauge(sg, 84);
  Partitioning spart(sg, {1, 1, 2, 2});
  const AsqtadLinks links = build_asqtad_links(su);
  const StaggeredField<double> sin_ = gaussian_staggered_source(sg, 83);

  struct Expect {
    const char* prec;
    Precision wire;
  };
  for (const Expect e : {Expect{"double", Precision::Double},
                         Expect{"float", Precision::Single},
                         Expect{"half", Precision::Half}}) {
    ScopedGhostPrec env(e.prec);

    // Wilson: depth-1 spin-projected half-spinor faces.
    PartitionedWilsonClover<double> wop(part, u, nullptr, -0.1);
    ASSERT_EQ(wop.ghost_precision(), e.wire);
    WilsonField<double> wout(g);
    wop.apply(wout, in);
    const std::uint64_t wsite = wire_site_bytes<HalfSpinor<double>>(e.wire);
    for (int mu = 0; mu < kNDim; ++mu) {
      std::uint64_t expect = 0;
      if (part.partitioned(mu)) {
        const std::uint64_t fv = static_cast<std::uint64_t>(
            part.local().volume() / part.local().dim(mu));
        expect = static_cast<std::uint64_t>(part.num_ranks()) * 2u * fv * wsite;
      }
      EXPECT_EQ(wop.traffic().spinor.bytes_by_dim[static_cast<std::size_t>(mu)],
                expect)
          << e.prec << " wilson mu=" << mu;
    }

    // Staggered: depth-3 color-vector faces (3 packed sites per face site).
    PartitionedStaggered<double> sop(spart, links.fat, links.lng, 0.05);
    ASSERT_EQ(sop.ghost_precision(), e.wire);
    StaggeredField<double> sout(sg);
    sop.apply(sout, sin_);
    const std::uint64_t ssite = wire_site_bytes<ColorVector<double>>(e.wire);
    for (int mu = 0; mu < kNDim; ++mu) {
      std::uint64_t expect = 0;
      if (spart.partitioned(mu)) {
        const std::uint64_t fv = static_cast<std::uint64_t>(
            spart.local().volume() / spart.local().dim(mu));
        expect = static_cast<std::uint64_t>(spart.num_ranks()) * 2u * 3u * fv *
                 ssite;
      }
      EXPECT_EQ(sop.traffic().spinor.bytes_by_dim[static_cast<std::size_t>(mu)],
                expect)
          << e.prec << " staggered mu=" << mu;
    }
  }
}

TEST(GhostWireBytes, HalfSpinorFacesWithinThirtyPercentOfDouble) {
  // The acceptance bound of the compressed wire: half spinor faces must
  // cost <= 30% of the double baseline (format: 28 vs 96 bytes = 29.2%).
  const double ratio =
      static_cast<double>(wire_site_bytes<HalfSpinor<double>>(Precision::Half)) /
      static_cast<double>(
          wire_site_bytes<HalfSpinor<double>>(Precision::Double));
  EXPECT_LE(ratio, 0.30);

  // And the same bound must hold for the bytes the exchange actually
  // meters on a partitioned Wilson hop, not just the per-site format.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 85);
  Partitioning part(g, {1, 1, 2, 2});
  const WilsonField<double> in = gaussian_wilson_source(g, 86);
  WilsonField<double> out(g);

  std::uint64_t bytes_double = 0, bytes_half = 0;
  {
    ScopedGhostPrec env("double");
    PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
    op.apply(out, in);
    bytes_double = op.traffic().spinor.total_bytes();
  }
  {
    ScopedGhostPrec env("half");
    PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
    op.apply(out, in);
    bytes_half = op.traffic().spinor.total_bytes();
  }
  ASSERT_GT(bytes_double, 0u);
  EXPECT_LE(static_cast<double>(bytes_half),
            0.30 * static_cast<double>(bytes_double));
}

// ---------------------------------------------------------------------------
// Chaos: a fault-repaired exchange re-sends the identical compressed
// payload, so the repaired result is bitwise equal to the fault-free run
// and the retry is metered.
// ---------------------------------------------------------------------------

TEST(GhostWireChaos, RepairedBitFlipTransparentUnderHalfWire) {
  ScopedRankMode mode(RankMode::Threads);
  ScopedGhostPrec env("half");
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 91);
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 92);

  clear_fault_plan();
  WilsonField<double> expect(g);
  op.apply(expect, in);  // fault-free half-wire reference

  FaultSpec spec;
  spec.seed = 6;
  spec.once[static_cast<int>(FaultKind::BitFlip)] = 2;  // corrupt one message
  spec.recv_timeout = microseconds(50000);
  spec.max_retries = 4;
  spec.backoff = microseconds(100);
  set_fault_plan(spec);
  const std::uint64_t retries_before = metric_counter("comm.retries").value();

  WilsonField<double> got(g);
  op.apply(got, in);
  clear_fault_plan();

  // The flip lands on the encoded wire bytes; the envelope checksum (also
  // computed over the wire bytes) catches it, and the retry re-encodes the
  // same faces into the same payload — bitwise-identical result.
  EXPECT_EQ(std::memcmp(expect.sites().data(), got.sites().data(),
                        expect.sites().size_bytes()),
            0);
  EXPECT_GE(metric_counter("comm.retries").value(), retries_before + 1);
}

}  // namespace
}  // namespace lqcd
