#include "fields/blas.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace lqcd {
namespace {

WilsonField<double> random_field(const LatticeGeometry& g, std::uint64_t seed) {
  WilsonField<double> f(g);
  Rng rng(seed);
  for (auto& s : f.sites()) {
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        s[sp][c] = Cplx<double>(rng.gaussian(), rng.gaussian());
      }
    }
  }
  return f;
}

class BlasTest : public ::testing::Test {
 protected:
  LatticeGeometry g{{4, 4, 4, 4}};
  WilsonField<double> x = random_field(g, 1);
  WilsonField<double> y = random_field(g, 2);
};

TEST_F(BlasTest, AxpyLinear) {
  WilsonField<double> y2 = y;
  axpy(2.5, x, y2);
  // <x, y2> = <x, y> + 2.5 <x, x>.
  const auto lhs = dot(x, y2);
  const auto rhs = dot(x, y) + 2.5 * norm2(x);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9);
}

TEST_F(BlasTest, XpayDefinition) {
  WilsonField<double> y2 = y;
  xpay(x, -0.75, y2);
  WilsonField<double> expect = x;
  axpy(-0.75, y, expect);
  axpy(-1.0, expect, y2);
  EXPECT_NEAR(norm2(y2), 0.0, 1e-18);
}

TEST_F(BlasTest, AxpbyDefinition) {
  WilsonField<double> y2 = y;
  axpby(0.5, x, -2.0, y2);
  WilsonField<double> expect(g);
  set_zero(expect);
  axpy(0.5, x, expect);
  axpy(-2.0, y, expect);
  axpy(-1.0, expect, y2);
  EXPECT_NEAR(norm2(y2), 0.0, 1e-18);
}

TEST_F(BlasTest, CaxpyComplexCoefficient) {
  const std::complex<double> a(0.3, -1.2);
  WilsonField<double> y2 = y;
  caxpy(a, x, y2);
  const auto lhs = dot(x, y2);
  const auto rhs = dot(x, y) + a * norm2(x);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9);
}

TEST_F(BlasTest, DotConjugateSymmetry) {
  const auto xy = dot(x, y);
  const auto yx = dot(y, x);
  EXPECT_NEAR(std::abs(xy - std::conj(yx)), 0.0, 1e-10);
}

TEST_F(BlasTest, NormMatchesSelfDot) {
  EXPECT_NEAR(norm2(x), dot(x, x).real(), 1e-9);
  EXPECT_NEAR(dot(x, x).imag(), 0.0, 1e-10);
}

TEST_F(BlasTest, CauchySchwarz) {
  EXPECT_LE(std::norm(dot(x, y)), norm2(x) * norm2(y) * (1 + 1e-12));
}

TEST_F(BlasTest, ScaleQuadratic) {
  WilsonField<double> x2 = x;
  scale(3.0, x2);
  EXPECT_NEAR(norm2(x2), 9.0 * norm2(x), 1e-8);
}

TEST_F(BlasTest, BlockDotSumsToGlobal) {
  BlockMask mask(g, {2, 1, 2, 2});
  const auto blocks = block_dot(x, y, mask);
  std::complex<double> sum{};
  for (const auto& b : blocks) sum += b;
  EXPECT_NEAR(std::abs(sum - dot(x, y)), 0.0, 1e-9);
}

TEST_F(BlasTest, BlockNormSumsToGlobal) {
  BlockMask mask(g, {1, 2, 2, 2});
  const auto blocks = block_norm2(x, mask);
  double sum = 0;
  for (double b : blocks) sum += b;
  EXPECT_NEAR(sum, norm2(x), 1e-9);
}

TEST_F(BlasTest, BlockCaxpyRespectsBlocks) {
  BlockMask mask(g, {1, 1, 1, 4});
  std::vector<std::complex<double>> coeffs(4);
  coeffs[0] = {1.0, 0.0};
  coeffs[1] = {0.0, 0.0};
  coeffs[2] = {-2.0, 1.0};
  coeffs[3] = {0.5, 0.5};
  WilsonField<double> y2 = y;
  block_caxpy(coeffs, x, y2, mask);
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    const int b = mask.block_of_site(s);
    WilsonSpinor<double> expect = x.at(s);
    expect *= Cplx<double>(coeffs[static_cast<std::size_t>(b)].real(),
                           coeffs[static_cast<std::size_t>(b)].imag());
    expect += y.at(s);
    expect -= y2.at(s);
    EXPECT_NEAR(norm2(expect), 0.0, 1e-18);
  }
}

TEST_F(BlasTest, StaggeredFieldOpsCompile) {
  StaggeredField<double> a(g), b(g);
  set_zero(a);
  set_zero(b);
  for (std::int64_t s = 0; s < g.volume(); ++s) a.at(s)[0] = 1.0;
  axpy(2.0, a, b);
  EXPECT_NEAR(norm2(b), 4.0 * static_cast<double>(g.volume()), 1e-9);
}

}  // namespace
}  // namespace lqcd
