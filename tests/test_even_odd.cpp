// Even-odd (Schur) preconditioning: the half-size solve plus
// back-substitution must reproduce the full-system solution.
#include <gtest/gtest.h>

#include "dirac/dense_reference.h"
#include "dirac/even_odd.h"
#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "solvers/bicgstab.h"

namespace lqcd {
namespace {

TEST(EvenOdd, SchurSolutionSolvesFullSystem) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 41);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const double mass = 0.2;

  const WilsonField<double> b = gaussian_wilson_source(g, 42);

  WilsonCloverSchurOperator<double> schur(u, &a, mass);
  WilsonField<double> b_hat(g);
  schur.prepare_source(b_hat, b);

  WilsonField<double> x(g);
  set_zero(x);
  BiCgStabParams params;
  params.tol = 1e-12;
  params.max_iter = 4000;
  const SolverStats stats = bicgstab_solve(schur, x, b_hat, params);
  ASSERT_TRUE(stats.converged);

  schur.reconstruct_solution(x, b);

  // Check the full-system residual.
  WilsonCloverOperator<double> m(u, &a, mass);
  WilsonField<double> r(g);
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 1e-9);
}

TEST(EvenOdd, SchurOperatorMatchesDenseSchurComplement) {
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 43);
  const CloverField<double> a = build_clover_field(u, 0.7);
  const double mass = 0.15;

  WilsonCloverSchurOperator<double> schur(u, &a, mass);

  // Dense M in the eo basis; extract blocks.
  const DenseMatrix<double> md = dense_wilson_clover(u, &a, mass);
  const int n = md.rows();
  const int h = n / 2;  // 12 * half_volume: even sites come first.

  WilsonField<double> in = gaussian_wilson_source(g, 44);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    in.at(s) = WilsonSpinor<double>{};
  }
  WilsonField<double> out(g);
  schur.apply(out, in);
  const auto flat_in = flatten(in);
  const auto flat_out = flatten(out);

  // Dense Schur: A_ee x_e - M_eo (A_oo)^{-1} M_oe x_e where M_eo already
  // carries the -1/2 factors from the assembly.
  DenseMatrix<double> a_ee(h, h), m_eo(h, h), m_oe(h, h), a_oo(h, h);
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < h; ++c) {
      a_ee(r, c) = md(r, c);
      m_eo(r, c) = md(r, h + c);
      m_oe(r, c) = md(h + r, c);
      a_oo(r, c) = md(h + r, h + c);
    }
  }
  std::vector<std::complex<double>> xe(static_cast<std::size_t>(h));
  for (int i = 0; i < h; ++i) xe[static_cast<std::size_t>(i)] = flat_in[static_cast<std::size_t>(i)];
  const auto t1 = m_oe.multiply(xe);
  const auto t2 = LuFactorization<double>(a_oo).solve(t1);
  const auto t3 = m_eo.multiply(t2);
  const auto t4 = a_ee.multiply(xe);
  double err = 0, nrm = 0;
  for (int i = 0; i < h; ++i) {
    const auto expect = t4[static_cast<std::size_t>(i)] - t3[static_cast<std::size_t>(i)];
    err += std::norm(flat_out[static_cast<std::size_t>(i)] - expect);
    nrm += std::norm(expect);
  }
  EXPECT_LT(err, 1e-18 * nrm);
  // Odd part of the output must be zero.
  for (int i = h; i < n; ++i) {
    EXPECT_EQ(flat_out[static_cast<std::size_t>(i)], std::complex<double>{});
  }
}

TEST(EvenOdd, PlainWilsonSchurAlsoWorks) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = weak_gauge(g, 45, 0.2);
  const double mass = 0.3;
  WilsonCloverSchurOperator<double> schur(u, nullptr, mass);
  const WilsonField<double> b = gaussian_wilson_source(g, 46);
  WilsonField<double> b_hat(g);
  schur.prepare_source(b_hat, b);
  WilsonField<double> x(g);
  set_zero(x);
  BiCgStabParams params;
  params.tol = 1e-11;
  const SolverStats stats = bicgstab_solve(schur, x, b_hat, params);
  ASSERT_TRUE(stats.converged);
  schur.reconstruct_solution(x, b);
  WilsonCloverOperator<double> m(u, nullptr, mass);
  WilsonField<double> r(g);
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 1e-8);
}

}  // namespace
}  // namespace lqcd
