// The twisted-mass Wilson operator (dirac/twisted_mass.h): dense-reference
// agreement, the gamma5-Hermiticity identity gamma5 M(mu) gamma5 =
// M(-mu)^dagger (the gamma5.tau1 Hermiticity of the degenerate doublet),
// flavor-sign symmetry, even-odd/Schur consistency with the full operator,
// bitwise seq==threads determinism of the partitioned solve at nonzero mu,
// GCR-DD convergence on the twisted system, and the batched serve path in
// both rank modes (with the coalescing key keeping twisted requests apart).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "comm/virtual_cluster.h"
#include "core/gcr_dd.h"
#include "dirac/dense_reference.h"
#include "dirac/twisted_mass.h"
#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/heatbath.h"
#include "linalg/gamma.h"
#include "serve/service.h"

namespace lqcd {
namespace {

GaugeField<double> thermalized(const LatticeGeometry& g, std::uint64_t seed) {
  GaugeField<double> u = hot_gauge(g, seed);
  HeatbathParams hb;
  hb.beta = 5.9;
  thermalize(u, hb, 3);
  return u;
}

class ScopedRankMode {
 public:
  explicit ScopedRankMode(RankMode m) : prev_(rank_mode()) { set_rank_mode(m); }
  ~ScopedRankMode() { set_rank_mode(prev_); }

 private:
  RankMode prev_;
};

double relative_residual(const LinearOperator<WilsonField<double>>& m,
                         const WilsonField<double>& x,
                         const WilsonField<double>& b) {
  WilsonField<double> r(x.geometry());
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  return std::sqrt(norm2(r) / norm2(b));
}

TEST(TwistedMass, OperatorMatchesDenseReference) {
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 171);
  const CloverField<double> a = build_clover_field(u, 0.8);
  const double mass = 0.12, mu = 0.3;

  for (int flavor : {+1, -1}) {
    const DenseMatrix<double> md = dense_twisted_mass(u, &a, mass, mu, flavor);
    TwistedMassOperator<double> op(u, &a, mass, mu, flavor);

    const WilsonField<double> in = gaussian_wilson_source(g, 172);
    WilsonField<double> out(g);
    op.apply(out, in);

    const auto want = md.multiply(flatten(in));
    const auto got = flatten(out);
    ASSERT_EQ(want.size(), got.size());
    double num = 0, den = 0;
    for (std::size_t i = 0; i < want.size(); ++i) {
      num += std::norm(got[i] - want[i]);
      den += std::norm(want[i]);
    }
    EXPECT_LT(std::sqrt(num / den), 1e-12) << "flavor " << flavor;
  }
}

TEST(TwistedMass, TwistTermIsPureImaginaryGamma5Diagonal) {
  // M(mu) - M(0) must be exactly i*mu*gamma5 — diagonal, spin-dependent
  // sign, no dependence on the gauge field or clover term.
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 173);
  const CloverField<double> a = build_clover_field(u, 1.2);
  const double mass = -0.05, mu = 0.21;

  const DenseMatrix<double> m0 = dense_twisted_mass(u, &a, mass, 0.0);
  const DenseMatrix<double> mmu = dense_twisted_mass(u, &a, mass, mu);
  const int n = m0.rows();
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      std::complex<double> want = 0.0;
      if (r == c) {
        const int spin = (r / 3) % 4;
        want = std::complex<double>(0.0, mu * kGamma5Sign[spin]);
      }
      ASSERT_EQ(mmu(r, c) - m0(r, c), want) << "(" << r << "," << c << ")";
    }
  }
}

TEST(TwistedMass, Gamma5HermiticityIdentity) {
  // gamma5 M(mu) gamma5 = M(-mu)^dagger: the twisted generalization of
  // Wilson gamma5-Hermiticity, equivalently gamma5.tau1 Hermiticity of the
  // doublet (tau1 swaps the flavors and with them the sign of mu).
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 175);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const double mass = 0.1, mu = 0.25;

  const DenseMatrix<double> mp = dense_twisted_mass(u, &a, mass, mu);
  const DenseMatrix<double> mm = dense_twisted_mass(u, &a, mass, -mu);
  const int n = mp.rows();
  double max_err = 0;
  for (int r = 0; r < n; ++r) {
    const double g5r = kGamma5Sign[(r / 3) % 4];
    for (int c = 0; c < n; ++c) {
      const double g5c = kGamma5Sign[(c / 3) % 4];
      const std::complex<double> lhs = g5r * mp(r, c) * g5c;
      const std::complex<double> rhs = std::conj(mm(c, r));
      max_err = std::max(max_err, std::abs(lhs - rhs));
    }
  }
  EXPECT_LT(max_err, 1e-13);
}

TEST(TwistedMass, FlavorSignFlipsMu) {
  // The tau3 = -1 flavor of the doublet is exactly the mu -> -mu operator.
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 177);
  const double mass = 0.07, mu = 0.4;
  TwistedMassOperator<double> minus_flavor(u, nullptr, mass, mu, -1);
  TwistedMassOperator<double> minus_mu(u, nullptr, mass, -mu, +1);

  const WilsonField<double> in = gaussian_wilson_source(g, 178);
  WilsonField<double> out_a(g), out_b(g);
  minus_flavor.apply(out_a, in);
  minus_mu.apply(out_b, in);
  EXPECT_EQ(std::memcmp(out_a.sites().data(), out_b.sites().data(),
                        out_a.sites().size_bytes()),
            0);
}

TEST(TwistedMass, SchurOperatorConsistentWithFull) {
  // If M x = b then the Schur operator maps the even part of x to the
  // prepared source: M_hat x_e = b_hat (even sites).
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 181);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const double mass = 0.15, mu = 0.3;

  TwistedMassOperator<double> full(u, &a, mass, mu);
  TwistedMassSchurOperator<double> schur(u, &a, mass, mu);

  const WilsonField<double> x = gaussian_wilson_source(g, 182);
  WilsonField<double> b(g);
  full.apply(b, x);

  WilsonField<double> b_hat(g);
  schur.prepare_source(b_hat, b);

  WilsonField<double> x_e = x;
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    x_e.at(s) = WilsonSpinor<double>{};
  }
  WilsonField<double> got(g);
  schur.apply(got, x_e);

  double num = 0, den = 0;
  for (std::int64_t s = 0; s < g.half_volume(); ++s) {
    WilsonSpinor<double> d = got.at(s);
    d -= b_hat.at(s);
    num += norm2(d);
    den += norm2(b_hat.at(s));
  }
  EXPECT_LT(std::sqrt(num / den), 1e-12);

  // And the back-substitution recovers the odd part of x exactly.
  WilsonField<double> rec = x_e;
  schur.reconstruct_solution(rec, b);
  WilsonField<double> diff = rec;
  axpy(-1.0, x, diff);
  EXPECT_LT(norm2(diff), 1e-24 * norm2(x));
}

TEST(TwistedMass, GcrDdConvergesAtNonzeroMu) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 183);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b = gaussian_wilson_source(g, 184);

  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-5;
  p.block_grid = {1, 1, 1, 2};
  p.twisted_mu = 0.25;
  GcrDdWilsonSolver solver(u, &a, p);
  WilsonField<double> x(g);
  const SolverStats stats = solver.solve(x, b);
  EXPECT_TRUE(stats.converged);

  // The solution must solve the *twisted* system to near the single
  // precision target — checked against the independent double-precision
  // twisted operator, not the solver's own residual.
  TwistedMassOperator<double> m(u, &a, p.mass, p.twisted_mu);
  EXPECT_LT(relative_residual(m, x, b), 5e-5);

  // ...and must NOT solve the untwisted system: the twist genuinely
  // changed the operator the solver ran against.
  WilsonCloverOperator<double> m0(u, &a, p.mass);
  EXPECT_GT(relative_residual(m0, x, b), 1e-3);
}

TEST(TwistedMass, PartitionedSolveSeqThreadsBitwiseAtNonzeroMu) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 185);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b = gaussian_wilson_source(g, 186);

  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-5;
  p.block_grid = {1, 1, 1, 2};
  p.rank_grid = {{1, 1, 1, 2}};
  p.twisted_mu = 0.2;

  WilsonField<double> x_seq(g), x_thr(g);
  SolverStats st_seq, st_thr;
  {
    ScopedRankMode mode(RankMode::Seq);
    GcrDdWilsonSolver solver(u, &a, p);
    st_seq = solver.solve(x_seq, b);
  }
  {
    ScopedRankMode mode(RankMode::Threads);
    GcrDdWilsonSolver solver(u, &a, p);
    st_thr = solver.solve(x_thr, b);
  }
  EXPECT_TRUE(st_seq.converged);
  EXPECT_EQ(st_seq.iterations, st_thr.iterations);
  EXPECT_EQ(st_seq.final_residual, st_thr.final_residual);
  EXPECT_EQ(std::memcmp(x_seq.sites().data(), x_thr.sites().data(),
                        x_seq.sites().size_bytes()),
            0);
}

TEST(TwistedMass, ServeTwistedRequestsBothRankModes) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 187);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b1 = gaussian_wilson_source(g, 188);
  const WilsonField<double> b2 = gaussian_wilson_source(g, 189);
  const double mass = 0.1, tol = 1e-5, mu = 0.25;

  for (RankMode rm : {RankMode::Seq, RankMode::Threads}) {
    ScopedRankMode mode(rm);
    serve::Config cfg;
    cfg.max_batch = 4;
    cfg.solver.mass = mass;
    cfg.solver.tol = tol;
    cfg.solver.block_grid = {1, 1, 1, 2};
    cfg.solver.rank_grid = {{1, 1, 1, 2}};
    serve::SolveService svc(u, &a, cfg);

    serve::Request req;
    req.action = serve::Action::TwistedMass;
    req.mass = mass;
    req.tol = tol;
    req.twisted_mu = mu;
    req.rhs.push_back(b1);
    req.rhs.push_back(b2);
    const serve::Result res = svc.submit(std::move(req)).get();
    ASSERT_EQ(res.status, serve::Status::Ok);
    ASSERT_EQ(res.solutions.size(), 2u);
    EXPECT_TRUE(res.stats[0].converged);
    EXPECT_TRUE(res.stats[1].converged);

    TwistedMassOperator<double> m(u, &a, mass, mu);
    EXPECT_LT(relative_residual(m, res.solutions[0], b1), 5e-5);
    EXPECT_LT(relative_residual(m, res.solutions[1], b2), 5e-5);
  }
}

TEST(TwistedMass, ServeKeyNormalizesStrayMuForWilsonClover) {
  // A WilsonClover request carrying a stray twisted_mu must neither split
  // the coalescing key nor twist the solve: the result is bitwise the
  // result of the same request with mu = 0.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 191);
  const WilsonField<double> b = gaussian_wilson_source(g, 192);

  serve::Config cfg;
  cfg.max_batch = 4;
  cfg.solver.mass = 0.1;
  cfg.solver.tol = 1e-5;
  cfg.solver.block_grid = {1, 1, 1, 2};
  serve::SolveService svc(u, nullptr, cfg);

  auto submit = [&](serve::Action action, double mu) {
    serve::Request req;
    req.action = action;
    req.mass = 0.1;
    req.tol = 1e-5;
    req.twisted_mu = mu;
    req.rhs.push_back(b);
    return svc.submit(std::move(req)).get();
  };
  const serve::Result plain = submit(serve::Action::WilsonClover, 0.0);
  const serve::Result stray = submit(serve::Action::WilsonClover, 0.4);
  const serve::Result twisted = submit(serve::Action::TwistedMass, 0.4);
  ASSERT_EQ(plain.status, serve::Status::Ok);
  ASSERT_EQ(stray.status, serve::Status::Ok);
  ASSERT_EQ(twisted.status, serve::Status::Ok);

  EXPECT_EQ(std::memcmp(plain.solutions[0].sites().data(),
                        stray.solutions[0].sites().data(),
                        plain.solutions[0].sites().size_bytes()),
            0);
  // The genuinely twisted request solved a different system.
  WilsonField<double> diff = twisted.solutions[0];
  axpy(-1.0, plain.solutions[0], diff);
  EXPECT_GT(norm2(diff), 0.0);
}

}  // namespace
}  // namespace lqcd
