// Gauge-field generation and observables: plaquette limits, gauge
// invariance, heatbath behaviour.
#include <gtest/gtest.h>

#include "gauge/configure.h"
#include "gauge/heatbath.h"
#include "fields/blas.h"
#include "gauge/observables.h"
#include "gauge/paths.h"
#include "linalg/su3.h"

namespace lqcd {
namespace {

TEST(Gauge, UnitFieldPlaquetteIsOne) {
  const GaugeField<double> u = unit_gauge(LatticeGeometry({4, 4, 4, 4}));
  EXPECT_NEAR(average_plaquette(u), 1.0, 1e-13);
  EXPECT_NEAR(average_rectangle(u), 1.0, 1e-13);
}

TEST(Gauge, HotFieldPlaquetteNearZero) {
  const GaugeField<double> u = hot_gauge(LatticeGeometry({6, 6, 6, 6}), 11);
  EXPECT_NEAR(average_plaquette(u), 0.0, 0.05);
}

TEST(Gauge, WeakFieldPlaquetteNearOne) {
  const GaugeField<double> u =
      weak_gauge(LatticeGeometry({4, 4, 4, 4}), 13, 0.05);
  EXPECT_GT(average_plaquette(u), 0.9);
  EXPECT_LT(average_plaquette(u), 1.0);
}

TEST(Gauge, HotStartDeterministicAndSeedDependent) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> a = hot_gauge(g, 21);
  const GaugeField<double> b = hot_gauge(g, 21);
  const GaugeField<double> c = hot_gauge(g, 22);
  double diff_ab = 0, diff_ac = 0;
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    for (int mu = 0; mu < kNDim; ++mu) {
      diff_ab += norm2(a.link(mu, s) - b.link(mu, s));
      diff_ac += norm2(a.link(mu, s) - c.link(mu, s));
    }
  }
  EXPECT_EQ(diff_ab, 0.0);
  EXPECT_GT(diff_ac, 1.0);
}

TEST(Gauge, PlaquetteGaugeInvariant) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 31);
  const auto omega = random_gauge_rotation(g, 32);
  const GaugeField<double> v = gauge_transform(u, omega);
  EXPECT_NEAR(average_plaquette(u), average_plaquette(v), 1e-12);
  EXPECT_NEAR(average_rectangle(u), average_rectangle(v), 1e-12);
}

TEST(Gauge, PathProductReversalIsAdjoint) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 41);
  const Coord x{1, 2, 3, 0};
  const std::array<PathStep, 4> fwd = {1, 2, -3, 4};
  // Reversed path from the endpoint.
  Coord end = x;
  for (PathStep p : fwd) {
    end = g.shifted(end, (p > 0 ? p : -p) - 1, p > 0 ? 1 : -1);
  }
  const std::array<PathStep, 4> bwd = {-4, 3, -2, -1};
  const Matrix3<double> a = path_product(u, x, fwd);
  const Matrix3<double> b = path_product(u, end, bwd);
  EXPECT_LT(norm2(a - adj(b)), 1e-24);
}

TEST(Gauge, StapleSumMatchesPlaquetteDerivative) {
  // Re tr(U_mu(x) * staple) sums the six plaquettes through the link.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 43);
  double via_staple = 0;
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    const Coord x = g.eo_coords(s);
    for (int mu = 0; mu < kNDim; ++mu) {
      via_staple += trace(u.link(mu, s) * staple_sum(u, x, mu)).real();
    }
  }
  // Each oriented plaquette appears twice per orientation: the sum over
  // links and staples counts every unoriented plaquette 4 times (once per
  // participating link orientation pattern).
  double via_plaq = 0;
  for (int mu = 0; mu < kNDim; ++mu) {
    for (int nu = mu + 1; nu < kNDim; ++nu) {
      via_plaq += average_plaquette_plane(u, mu, nu) * 3.0 *
                  static_cast<double>(g.volume());
    }
  }
  EXPECT_NEAR(via_staple, 4.0 * via_plaq, 1e-8);
}

TEST(Gauge, HeatbathStaysInGroup) {
  GaugeField<double> u = hot_gauge(LatticeGeometry({4, 4, 4, 4}), 51);
  HeatbathParams hb;
  hb.beta = 5.7;
  hb.overrelax_per_sweep = 1;
  heatbath_sweep(u, hb, 0);
  for (std::int64_t s = 0; s < u.geometry().volume(); ++s) {
    for (int mu = 0; mu < kNDim; ++mu) {
      EXPECT_LT(unitarity_error(u.link(mu, s)), 1e-10);
    }
  }
}

TEST(Gauge, HeatbathOrdersFromHotStart) {
  // At beta = 5.7 the plaquette should rise well above the hot-start value
  // within a few sweeps (equilibrium ~ 0.55).
  GaugeField<double> u = hot_gauge(LatticeGeometry({4, 4, 4, 4}), 53);
  const double p0 = average_plaquette(u);
  HeatbathParams hb;
  hb.beta = 5.7;
  thermalize(u, hb, 5);
  const double p1 = average_plaquette(u);
  EXPECT_GT(p1, p0 + 0.3);
  EXPECT_LT(p1, 0.75);
}

TEST(Gauge, HeatbathTracksCoupling) {
  // Stronger coupling (smaller beta) -> smaller plaquette.
  const LatticeGeometry g({4, 4, 4, 4});
  GaugeField<double> weak = hot_gauge(g, 55);
  GaugeField<double> strong = hot_gauge(g, 55);
  HeatbathParams wp;
  wp.beta = 8.0;
  HeatbathParams sp;
  sp.beta = 2.0;
  thermalize(weak, wp, 6);
  thermalize(strong, sp, 6);
  EXPECT_GT(average_plaquette(weak), average_plaquette(strong) + 0.2);
}

TEST(Gauge, OverrelaxationPreservesAction) {
  GaugeField<double> u = hot_gauge(LatticeGeometry({4, 4, 4, 4}), 57);
  HeatbathParams hb;
  hb.beta = 5.7;
  thermalize(u, hb, 3);
  const double p_before = average_plaquette(u);
  overrelax_sweep(u, 0, 0);
  const double p_after = average_plaquette(u);
  EXPECT_NEAR(p_before, p_after, 5e-3);
}

TEST(Gauge, GaussianSourcesNormalized) {
  const LatticeGeometry g({4, 4, 4, 4});
  const WilsonField<double> w = gaussian_wilson_source(g, 61);
  // 24 reals of unit variance per site.
  EXPECT_NEAR(norm2(w) / static_cast<double>(g.volume()), 24.0, 1.5);
  const StaggeredField<double> st = gaussian_staggered_source(g, 62);
  EXPECT_NEAR(norm2(st) / static_cast<double>(g.volume()), 6.0, 0.8);
}

}  // namespace
}  // namespace lqcd
