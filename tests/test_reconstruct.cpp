#include "linalg/reconstruct.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fields/compressed_gauge.h"
#include "gauge/configure.h"
#include "linalg/su3.h"

namespace lqcd {
namespace {

TEST(Reconstruct12, ExactRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Matrix3<double> u = random_su3(rng);
    const Matrix3<double> v = decompress12(compress12(u));
    EXPECT_LT(std::sqrt(norm2(v - u)), 1e-13);
  }
}

TEST(Reconstruct12, ReconstructedRowUnitary) {
  Rng rng(2);
  const Matrix3<double> u = random_su3(rng);
  const Matrix3<double> v = decompress12(compress12(u));
  EXPECT_LT(unitarity_error(v), 1e-13);
  EXPECT_NEAR(det(v).real(), 1.0, 1e-13);
}

TEST(Reconstruct8, ExactRoundTrip) {
  Rng rng(3);
  double worst = 0;
  for (int i = 0; i < 500; ++i) {
    const Matrix3<double> u = random_su3(rng);
    const Matrix3<double> v = decompress8(compress8(u));
    worst = std::max(worst, std::sqrt(norm2(v - u)));
  }
  EXPECT_LT(worst, 1e-10);
}

TEST(Reconstruct8, HandlesNearDegenerateFirstRow) {
  // First row close to (0, 1, 0): the complement-basis seed must switch.
  Matrix3<double> u = Matrix3<double>::zero();
  u(0, 1) = Cplx<double>(1.0);
  u(1, 2) = Cplx<double>(1.0);
  u(2, 0) = Cplx<double>(1.0);
  // This permutation has det = +1.
  EXPECT_NEAR(det(u).real(), 1.0, 1e-15);
  const Matrix3<double> v = decompress8(compress8(u));
  EXPECT_LT(std::sqrt(norm2(v - u)), 1e-12);
}

TEST(Reconstruct8, IdentityMatrix) {
  const Matrix3<double> u = Matrix3<double>::identity();
  const Matrix3<double> v = decompress8(compress8(u));
  EXPECT_LT(std::sqrt(norm2(v - u)), 1e-13);
}

TEST(Reconstruct8, SinglePrecisionAccuracy) {
  Rng rng(4);
  double worst = 0;
  for (int i = 0; i < 200; ++i) {
    const Matrix3<float> u = convert<float>(random_su3(rng));
    const Matrix3<float> v = decompress8(compress8(u));
    worst = std::max(worst, static_cast<double>(std::sqrt(norm2(v - u))));
  }
  EXPECT_LT(worst, 5e-5);
}

TEST(Reconstruct, RealCountsMatchEnum) {
  EXPECT_EQ(reals_per_link(Reconstruct::None), 18);
  EXPECT_EQ(reals_per_link(Reconstruct::Twelve), 12);
  EXPECT_EQ(reals_per_link(Reconstruct::Eight), 8);
  EXPECT_EQ(sizeof(Packed12<float>), 12 * sizeof(float));
  EXPECT_EQ(sizeof(Packed8<double>), 8 * sizeof(double));
}

TEST(Reconstruct, ParseAndToString) {
  EXPECT_EQ(parse_reconstruct("18"), Reconstruct::None);
  EXPECT_EQ(parse_reconstruct("none"), Reconstruct::None);
  EXPECT_EQ(parse_reconstruct("12"), Reconstruct::Twelve);
  EXPECT_EQ(parse_reconstruct("8"), Reconstruct::Eight);
  EXPECT_FALSE(parse_reconstruct("9").has_value());
  EXPECT_FALSE(parse_reconstruct("").has_value());
  EXPECT_STREQ(to_string(Reconstruct::None), "18");
  EXPECT_STREQ(to_string(Reconstruct::Twelve), "12");
  EXPECT_STREQ(to_string(Reconstruct::Eight), "8");
}

// Worst-case link error of a compressed field against the original, over
// all directions and sites.
template <typename Real>
double worst_link_error(const GaugeField<Real>& u,
                        const CompressedGaugeField<Real>& c) {
  double worst = 0;
  for (int mu = 0; mu < kNDim; ++mu) {
    for (std::int64_t s = 0; s < u.geometry().volume(); ++s) {
      const Matrix3<Real> d = c.link(mu, s) - u.link(mu, s);
      worst = std::max(worst, std::sqrt(static_cast<double>(norm2(d))));
    }
  }
  return worst;
}

TEST(CompressedGauge, NoneSchemeIsBitwiseExact) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 301);
  const CompressedGaugeField<double> c(u, Reconstruct::None);
  for (int mu = 0; mu < kNDim; ++mu) {
    for (std::int64_t s = 0; s < g.volume(); ++s) {
      const Matrix3<double> a = u.link(mu, s);
      const Matrix3<double> b = c.link(mu, s);
      ASSERT_EQ(std::memcmp(&a, &b, sizeof(a)), 0) << "mu=" << mu;
    }
  }
}

TEST(CompressedGauge, Recon12MatchesUnitaryField) {
  // hot_gauge links are exactly unitary, so reconstruct-12 round-trips to
  // rounding error.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 302);
  const CompressedGaugeField<double> c(u, Reconstruct::Twelve);
  EXPECT_LT(worst_link_error(u, c), 1e-13);
}

TEST(CompressedGauge, Recon8MatchesUnitaryField) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 303);
  const CompressedGaugeField<double> c(u, Reconstruct::Eight);
  EXPECT_LT(worst_link_error(u, c), 1e-9);
}

TEST(CompressedGauge, HalfStorageErrorIsBoundedAndNonZero) {
  // The int16 fixed-point codec truncates: the error must be within the
  // quantization step of the packed parametrization, yet strictly larger
  // than full-precision round-trip error (proving truncation happened).
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 304);

  const CompressedGaugeField<double> h12(u, Reconstruct::Twelve,
                                         /*half_storage=*/true);
  const double e12 = worst_link_error(u, h12);
  EXPECT_LT(e12, 1e-3);
  EXPECT_GT(e12, 1e-7);

  const CompressedGaugeField<double> h8(u, Reconstruct::Eight,
                                        /*half_storage=*/true);
  const double e8 = worst_link_error(u, h8);
  EXPECT_LT(e8, 1e-2);
  EXPECT_GT(e8, 1e-7);
}

TEST(CompressedGauge, StoredBytesShrinkWithScheme) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 305);
  const CompressedGaugeField<double> c18(u, Reconstruct::None);
  const CompressedGaugeField<double> c12(u, Reconstruct::Twelve);
  const CompressedGaugeField<double> c8(u, Reconstruct::Eight);
  EXPECT_EQ(c18.stored_bytes(),
            4 * g.volume() * 18 * static_cast<std::int64_t>(sizeof(double)));
  EXPECT_EQ(c12.stored_bytes() * 18, c18.stored_bytes() * 12);
  EXPECT_EQ(c8.stored_bytes() * 18, c18.stored_bytes() * 8);
  // The acceptance criterion: recon-12 cuts gauge storage by >= 30%.
  EXPECT_GE(
      static_cast<double>(c18.stored_bytes() - c12.stored_bytes()),
      0.30 * static_cast<double>(c18.stored_bytes()));
}

TEST(Reconstruct8, PreservesGroupStructure) {
  // Round-trip twice composes to the same matrix, and products survive.
  Rng rng(5);
  const Matrix3<double> a = random_su3(rng);
  const Matrix3<double> b = random_su3(rng);
  const Matrix3<double> ra = decompress8(compress8(a));
  const Matrix3<double> rb = decompress8(compress8(b));
  EXPECT_LT(std::sqrt(norm2(ra * rb - a * b)), 1e-9);
}

}  // namespace
}  // namespace lqcd
