#include "linalg/reconstruct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/su3.h"

namespace lqcd {
namespace {

TEST(Reconstruct12, ExactRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Matrix3<double> u = random_su3(rng);
    const Matrix3<double> v = decompress12(compress12(u));
    EXPECT_LT(std::sqrt(norm2(v - u)), 1e-13);
  }
}

TEST(Reconstruct12, ReconstructedRowUnitary) {
  Rng rng(2);
  const Matrix3<double> u = random_su3(rng);
  const Matrix3<double> v = decompress12(compress12(u));
  EXPECT_LT(unitarity_error(v), 1e-13);
  EXPECT_NEAR(det(v).real(), 1.0, 1e-13);
}

TEST(Reconstruct8, ExactRoundTrip) {
  Rng rng(3);
  double worst = 0;
  for (int i = 0; i < 500; ++i) {
    const Matrix3<double> u = random_su3(rng);
    const Matrix3<double> v = decompress8(compress8(u));
    worst = std::max(worst, std::sqrt(norm2(v - u)));
  }
  EXPECT_LT(worst, 1e-10);
}

TEST(Reconstruct8, HandlesNearDegenerateFirstRow) {
  // First row close to (0, 1, 0): the complement-basis seed must switch.
  Matrix3<double> u = Matrix3<double>::zero();
  u(0, 1) = Cplx<double>(1.0);
  u(1, 2) = Cplx<double>(1.0);
  u(2, 0) = Cplx<double>(1.0);
  // This permutation has det = +1.
  EXPECT_NEAR(det(u).real(), 1.0, 1e-15);
  const Matrix3<double> v = decompress8(compress8(u));
  EXPECT_LT(std::sqrt(norm2(v - u)), 1e-12);
}

TEST(Reconstruct8, IdentityMatrix) {
  const Matrix3<double> u = Matrix3<double>::identity();
  const Matrix3<double> v = decompress8(compress8(u));
  EXPECT_LT(std::sqrt(norm2(v - u)), 1e-13);
}

TEST(Reconstruct8, SinglePrecisionAccuracy) {
  Rng rng(4);
  double worst = 0;
  for (int i = 0; i < 200; ++i) {
    const Matrix3<float> u = convert<float>(random_su3(rng));
    const Matrix3<float> v = decompress8(compress8(u));
    worst = std::max(worst, static_cast<double>(std::sqrt(norm2(v - u))));
  }
  EXPECT_LT(worst, 5e-5);
}

TEST(Reconstruct, RealCountsMatchEnum) {
  EXPECT_EQ(reals_per_link(Reconstruct::None), 18);
  EXPECT_EQ(reals_per_link(Reconstruct::Twelve), 12);
  EXPECT_EQ(reals_per_link(Reconstruct::Eight), 8);
  EXPECT_EQ(sizeof(Packed12<float>), 12 * sizeof(float));
  EXPECT_EQ(sizeof(Packed8<double>), 8 * sizeof(double));
}

TEST(Reconstruct8, PreservesGroupStructure) {
  // Round-trip twice composes to the same matrix, and products survive.
  Rng rng(5);
  const Matrix3<double> a = random_su3(rng);
  const Matrix3<double> b = random_su3(rng);
  const Matrix3<double> ra = decompress8(compress8(a));
  const Matrix3<double> rb = decompress8(compress8(b));
  EXPECT_LT(std::sqrt(norm2(ra * rb - a * b)), 1e-9);
}

}  // namespace
}  // namespace lqcd
