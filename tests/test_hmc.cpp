// Hybrid Monte Carlo: force vs numerical action gradient, leapfrog energy
// conservation and reversibility, Metropolis behaviour, and ensemble
// agreement with the heatbath.
#include <gtest/gtest.h>

#include <cmath>

#include "gauge/configure.h"
#include "gauge/heatbath.h"
#include "gauge/hmc.h"
#include "gauge/observables.h"
#include "linalg/su3.h"

namespace lqcd {
namespace {

TEST(Hmc, TracelessAntihermitianProjection) {
  Rng rng(1);
  const Matrix3<double> m = random_su3(rng);
  const Matrix3<double> a = traceless_antihermitian(m);
  EXPECT_LT(norm2(a + adj(a)), 1e-26);
  EXPECT_NEAR(std::abs(trace(a)), 0.0, 1e-13);
  // Projection is idempotent.
  const Matrix3<double> aa = traceless_antihermitian(a);
  EXPECT_LT(norm2(aa - a), 1e-26);
}

TEST(Hmc, MomentaAreAlgebraValuedWithUnitVariance) {
  const LatticeGeometry g({4, 4, 4, 4});
  MomentumField p(g);
  sample_momenta(p, 11, 0);
  double ke = 0;
  for (const auto& link : p.all_links()) {
    EXPECT_LT(norm2(link + adj(link)), 1e-24);
    EXPECT_NEAR(std::abs(trace(link)), 0.0, 1e-12);
    ke -= trace(link * link).real();
  }
  // <KE> = 4 d.o.f. per link dimension... : 8 generators x 1/2 per link.
  const double links = 4.0 * static_cast<double>(g.volume());
  EXPECT_NEAR(ke / links, 4.0, 0.25);
  EXPECT_NEAR(kinetic_energy(p), ke, 1e-8);
}

TEST(Hmc, ForceMatchesNumericalGradient) {
  const LatticeGeometry g({4, 4, 4, 4});
  GaugeField<double> u = hot_gauge(g, 21);
  const double beta = 5.5;
  MomentumField f(g);
  gauge_force(u, beta, f);

  Rng rng(22);
  for (int trial = 0; trial < 6; ++trial) {
    const std::int64_t s =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(g.volume())));
    const int mu = static_cast<int>(rng.below(4));
    const Matrix3<double> x = random_antihermitian(rng, 1.0);
    const Matrix3<double> xt = traceless_antihermitian(x);

    // dS/deps for U -> exp(eps X) U must equal -2 tr(X F).
    const double eps = 1e-5;
    GaugeField<double> up = u;
    up.link(mu, s) = expm(eps * xt) * u.link(mu, s);
    GaugeField<double> um = u;
    um.link(mu, s) = expm(-1.0 * eps * xt) * u.link(mu, s);
    const double numeric =
        (gauge_action(up, beta) - gauge_action(um, beta)) / (2.0 * eps);
    const double analytic = -2.0 * trace(xt * f.link(mu, s)).real();
    EXPECT_NEAR(numeric, analytic, 1e-5 * std::max(1.0, std::abs(analytic)))
        << "site " << s << " mu " << mu;
  }
}

TEST(Hmc, LeapfrogConservesEnergyAtSecondOrder) {
  const LatticeGeometry g({4, 4, 4, 4});
  GaugeField<double> u0 = weak_gauge(g, 23, 0.3);
  const double beta = 5.5;

  auto delta_h = [&](int steps) {
    GaugeField<double> u = u0;
    MomentumField p(g);
    sample_momenta(p, 24, 0);
    const double h0 = kinetic_energy(p) + gauge_action(u, beta);
    leapfrog(u, p, beta, 0.5, steps);
    return std::abs(kinetic_energy(p) + gauge_action(u, beta) - h0);
  };
  const double coarse = delta_h(8);
  const double mid = delta_h(16);
  const double fine = delta_h(32);
  // Leapfrog is O(eps^2): halving eps shrinks |dH| by ~4 (allow slack for
  // higher-order terms at the coarse end).
  EXPECT_GT(coarse / mid, 2.5);
  EXPECT_LT(coarse / mid, 6.5);
  EXPECT_GT(mid / fine, 2.5);
  EXPECT_LT(mid / fine, 6.5);
}

TEST(Hmc, LeapfrogExactlyReversible) {
  const LatticeGeometry g({4, 4, 4, 4});
  GaugeField<double> u = hot_gauge(g, 25);
  const GaugeField<double> u0 = u;
  MomentumField p(g);
  sample_momenta(p, 26, 0);
  const double beta = 5.7;

  leapfrog(u, p, beta, 0.4, 10);
  // Flip momenta and integrate back.
  for (auto& link : p.all_links()) link *= -1.0;
  leapfrog(u, p, beta, 0.4, 10);

  double diff = 0, norm = 0;
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    for (int mu = 0; mu < kNDim; ++mu) {
      diff += norm2(u.link(mu, s) - u0.link(mu, s));
      norm += norm2(u0.link(mu, s));
    }
  }
  EXPECT_LT(diff, 1e-18 * norm);
}

TEST(Hmc, TrajectoriesAcceptAtFineStep) {
  const LatticeGeometry g({4, 4, 4, 4});
  GaugeField<double> u = hot_gauge(g, 27);
  HmcParams params;
  params.beta = 5.5;
  params.tau = 0.5;
  params.steps = 25;
  int accepted = 0;
  double max_dh = 0;
  for (int t = 0; t < 8; ++t) {
    const HmcStats stats = hmc_trajectory(u, params, t);
    accepted += stats.accepted ? 1 : 0;
    max_dh = std::max(max_dh, std::abs(stats.delta_h));
  }
  EXPECT_GE(accepted, 6);   // fine steps -> high acceptance
  EXPECT_LT(max_dh, 1.0);
  // Links stay in the group.
  for (const auto& link : u.all_links()) {
    EXPECT_LT(unitarity_error(link), 1e-8);
  }
}

TEST(Hmc, EnsemblePlaquetteMatchesHeatbath) {
  // Both algorithms target exp(-S_g): their equilibrium plaquettes must
  // agree within statistical noise on this small lattice.
  const LatticeGeometry g({4, 4, 4, 4});
  const double beta = 5.7;

  GaugeField<double> u_hb = hot_gauge(g, 31);
  HeatbathParams hb;
  hb.beta = beta;
  thermalize(u_hb, hb, 10);
  double plaq_hb = 0;
  for (int i = 0; i < 10; ++i) {
    heatbath_sweep(u_hb, hb, 100 + i);
    plaq_hb += average_plaquette(u_hb);
  }
  plaq_hb /= 10;

  GaugeField<double> u_hmc = hot_gauge(g, 32);
  HmcParams params;
  params.beta = beta;
  params.tau = 1.0;
  params.steps = 20;
  for (int t = 0; t < 15; ++t) hmc_trajectory(u_hmc, params, t);  // burn-in
  double plaq_hmc = 0;
  for (int t = 15; t < 30; ++t) {
    hmc_trajectory(u_hmc, params, t);
    plaq_hmc += average_plaquette(u_hmc);
  }
  plaq_hmc /= 15;

  EXPECT_NEAR(plaq_hmc, plaq_hb, 0.05);
}

}  // namespace
}  // namespace lqcd
