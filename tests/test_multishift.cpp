// Multi-shift CG: every shifted solution must match an independent
// single-shift CG solve, in the iteration count of the hardest shift.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/staggered.h"
#include "fields/blas.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "solvers/cg.h"
#include "solvers/multishift_cg.h"

namespace lqcd {
namespace {

struct Fixture {
  LatticeGeometry g{{4, 4, 4, 4}};
  GaugeField<double> u = hot_gauge(g, 111);
  AsqtadLinks links = build_asqtad_links(u);
  double mass = 0.1;
  StaggeredField<double> b = even_source();

  StaggeredField<double> even_source() {
    StaggeredField<double> s = gaussian_staggered_source(g, 112);
    for (std::int64_t i = g.half_volume(); i < g.volume(); ++i) {
      s.at(i) = ColorVector<double>{};
    }
    return s;
  }
};

TEST(Multishift, MatchesIndividualSolves) {
  Fixture f;
  const std::vector<double> shifts{0.0, 0.02, 0.1, 0.5};
  StaggeredSchurOperator<double> base(f.links.fat, f.links.lng, f.mass, 0.0);

  std::vector<StaggeredField<double>> xs(shifts.size(),
                                         StaggeredField<double>(f.g));
  MultishiftParams p;
  p.tol = 1e-10;
  std::vector<ShiftResult> per_shift;
  const SolverStats stats =
      multishift_cg_solve(base, xs, shifts, f.b, p, &per_shift);
  ASSERT_TRUE(stats.converged);

  for (std::size_t i = 0; i < shifts.size(); ++i) {
    EXPECT_TRUE(per_shift[i].converged) << "shift " << shifts[i];
    StaggeredSchurOperator<double> shifted(f.links.fat, f.links.lng, f.mass,
                                           shifts[i]);
    // True residual of the multishift solution.
    StaggeredField<double> r(f.g);
    shifted.apply(r, xs[i]);
    scale(-1.0, r);
    axpy(1.0, f.b, r);
    EXPECT_LT(std::sqrt(norm2(r) / norm2(f.b)), 5e-9) << "shift " << shifts[i];

    // Compare against an independent CG solve.
    StaggeredField<double> x_ref(f.g);
    set_zero(x_ref);
    CgParams cp;
    cp.tol = 1e-11;
    ASSERT_TRUE(cg_solve(shifted, x_ref, f.b, cp).converged);
    axpy(-1.0, x_ref, xs[i]);
    EXPECT_LT(std::sqrt(norm2(xs[i]) / norm2(x_ref)), 1e-7)
        << "shift " << shifts[i];
  }
}

TEST(Multishift, IterationCountThatOfSmallestShift) {
  // The multishift iteration count must be close to a plain CG solve of the
  // hardest (smallest-shift) system, not the sum over shifts.
  Fixture f;
  const std::vector<double> shifts{0.0, 0.05, 0.3};
  StaggeredSchurOperator<double> base(f.links.fat, f.links.lng, f.mass, 0.0);

  std::vector<StaggeredField<double>> xs(shifts.size(),
                                         StaggeredField<double>(f.g));
  MultishiftParams p;
  p.tol = 1e-8;
  const SolverStats multi = multishift_cg_solve(base, xs, shifts, f.b, p);

  StaggeredField<double> x(f.g);
  set_zero(x);
  CgParams cp;
  cp.tol = 1e-8;
  const SolverStats single = cg_solve(base, x, f.b, cp);

  EXPECT_LE(std::abs(multi.iterations - single.iterations), 3);
}

TEST(Multishift, LargerShiftsConvergeFaster) {
  Fixture f;
  const std::vector<double> shifts{0.0, 1.0};
  StaggeredSchurOperator<double> base(f.links.fat, f.links.lng, f.mass, 0.0);
  std::vector<StaggeredField<double>> xs(shifts.size(),
                                         StaggeredField<double>(f.g));
  MultishiftParams p;
  p.tol = 1e-9;
  std::vector<ShiftResult> per_shift;
  multishift_cg_solve(base, xs, shifts, f.b, p, &per_shift);
  // The heavily shifted system is better conditioned; its residual at exit
  // is at or below the base system's.
  EXPECT_LE(per_shift[1].final_residual, per_shift[0].final_residual * 1.01);
}

TEST(Multishift, NonZeroBaseShiftRebased) {
  // All shifts strictly positive: internal rebase on the smallest.
  Fixture f;
  const std::vector<double> shifts{0.04, 0.2};
  StaggeredSchurOperator<double> base(f.links.fat, f.links.lng, f.mass, 0.0);
  std::vector<StaggeredField<double>> xs(shifts.size(),
                                         StaggeredField<double>(f.g));
  MultishiftParams p;
  p.tol = 1e-9;
  ASSERT_TRUE(multishift_cg_solve(base, xs, shifts, f.b, p).converged);
  for (std::size_t i = 0; i < shifts.size(); ++i) {
    StaggeredSchurOperator<double> shifted(f.links.fat, f.links.lng, f.mass,
                                           shifts[i]);
    StaggeredField<double> r(f.g);
    shifted.apply(r, xs[i]);
    scale(-1.0, r);
    axpy(1.0, f.b, r);
    EXPECT_LT(std::sqrt(norm2(r) / norm2(f.b)), 1e-8);
  }
}

TEST(Multishift, SingleShiftReducesToCg) {
  Fixture f;
  const std::vector<double> shifts{0.0};
  StaggeredSchurOperator<double> base(f.links.fat, f.links.lng, f.mass, 0.0);
  std::vector<StaggeredField<double>> xs(1, StaggeredField<double>(f.g));
  MultishiftParams p;
  p.tol = 1e-9;
  const SolverStats multi = multishift_cg_solve(base, xs, shifts, f.b, p);
  StaggeredField<double> x(f.g);
  set_zero(x);
  CgParams cp;
  cp.tol = 1e-9;
  const SolverStats single = cg_solve(base, x, f.b, cp);
  EXPECT_LE(std::abs(multi.iterations - single.iterations), 2);
  axpy(-1.0, x, xs[0]);
  EXPECT_LT(std::sqrt(norm2(xs[0])), 1e-6 * std::sqrt(norm2(x)));
}

}  // namespace
}  // namespace lqcd
