// Extensions beyond the paper's §8 configuration: multiplicative Schwarz
// (SAP) preconditioning, CGNE/CGNR normal-equation solvers, and gauge
// configuration I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "gauge/configure.h"
#include "gauge/gauge_io.h"
#include "gauge/heatbath.h"
#include "gauge/observables.h"
#include "solvers/gcr.h"
#include "solvers/normal_cg.h"
#include "solvers/overlap_schwarz.h"
#include "solvers/sap.h"
#include "solvers/schwarz.h"

namespace lqcd {
namespace {

struct WilsonSystem {
  LatticeGeometry g{{4, 4, 4, 8}};
  GaugeField<double> u = make_u();
  double mass = 0.05;
  WilsonCloverOperator<double> m{u, nullptr, mass};
  WilsonField<double> b = gaussian_wilson_source(g, 172);

  GaugeField<double> make_u() {
    GaugeField<double> cfg = hot_gauge(g, 171);
    HeatbathParams hb;
    hb.beta = 5.9;
    thermalize(cfg, hb, 3);
    return cfg;
  }

  double residual(const WilsonField<double>& x) {
    WilsonField<double> r(g);
    m.apply(r, x);
    scale(-1.0, r);
    axpy(1.0, b, r);
    return std::sqrt(norm2(r) / norm2(b));
  }
};

TEST(Sap, BlockColoringIsProper) {
  LatticeGeometry g({4, 4, 8, 8});
  BlockMask mask(g, {1, 1, 2, 4});
  // block_coords inverts the id ordering, and adjacent (non-wrapping)
  // blocks along any grid dimension carry opposite colours.
  for (int b = 0; b < mask.num_blocks(); ++b) {
    const Coord c = mask.block_coords(b);
    int id = 0;
    for (int k = kNDim - 1; k >= 0; --k) {
      id = id * mask.grid()[static_cast<std::size_t>(k)] + c[k];
    }
    EXPECT_EQ(id, b);
    for (int mu = 0; mu < kNDim; ++mu) {
      if (c[mu] + 1 >= mask.grid()[static_cast<std::size_t>(mu)]) continue;
      Coord n = c;
      n[mu] += 1;
      int nid = 0;
      for (int k = kNDim - 1; k >= 0; --k) {
        nid = nid * mask.grid()[static_cast<std::size_t>(k)] + n[k];
      }
      EXPECT_NE(mask.block_color(b), mask.block_color(nid));
    }
  }
}

TEST(Sap, RestrictToColorPartitions) {
  LatticeGeometry g({4, 4, 4, 8});
  BlockMask mask(g, {1, 1, 2, 2});
  WilsonField<double> f = gaussian_wilson_source(g, 173);
  WilsonField<double> red = f;
  WilsonField<double> black = f;
  restrict_to_color(red, mask, 0);
  restrict_to_color(black, mask, 1);
  WilsonField<double> sum = red;
  axpy(1.0, black, sum);
  axpy(-1.0, f, sum);
  EXPECT_EQ(norm2(sum), 0.0);
  EXPECT_GT(norm2(red), 0.0);
  EXPECT_GT(norm2(black), 0.0);
}

TEST(Sap, PreconditionerAcceleratesGcr) {
  WilsonSystem sys;
  BlockMask mask(sys.g, {1, 1, 2, 2});
  WilsonCloverOperator<double> dirichlet(sys.u, nullptr, sys.mass, &mask);

  GcrParams gp;
  gp.tol = 1e-7;
  gp.kmax = 16;

  WilsonField<double> x_plain(sys.g);
  set_zero(x_plain);
  const SolverStats plain = gcr_solve(sys.m, x_plain, sys.b, nullptr, gp);

  SapPreconditioner<WilsonField<double>> sap(sys.m, dirichlet, mask,
                                             SapParams{1, {4, 1.0}});
  WilsonField<double> x_sap(sys.g);
  set_zero(x_sap);
  const SolverStats with_sap = gcr_solve(sys.m, x_sap, sys.b, &sap, gp);

  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(with_sap.converged);
  EXPECT_LT(with_sap.iterations, plain.iterations);
  EXPECT_LT(sys.residual(x_sap), 1e-6);
}

TEST(Sap, MultiplicativeBeatsAdditiveAtEqualInnerWork) {
  // One SAP cycle with n MR steps per colour does the same block-solve work
  // as 2n additive MR steps but refreshes the residual in between; it
  // should not need more outer iterations.
  WilsonSystem sys;
  BlockMask mask(sys.g, {1, 1, 2, 2});
  WilsonCloverOperator<double> dirichlet(sys.u, nullptr, sys.mass, &mask);

  GcrParams gp;
  gp.tol = 1e-6;
  gp.kmax = 16;

  SchwarzPreconditioner<WilsonField<double>> additive(dirichlet, mask,
                                                      MrParams{8, 1.0});
  WilsonField<double> x_add(sys.g);
  set_zero(x_add);
  const SolverStats add = gcr_solve(sys.m, x_add, sys.b, &additive, gp);

  SapPreconditioner<WilsonField<double>> sap(sys.m, dirichlet, mask,
                                             SapParams{1, {4, 1.0}});
  WilsonField<double> x_sap(sys.g);
  set_zero(x_sap);
  const SolverStats mult = gcr_solve(sys.m, x_sap, sys.b, &sap, gp);

  EXPECT_TRUE(add.converged);
  EXPECT_TRUE(mult.converged);
  EXPECT_LE(mult.iterations, add.iterations + 1);
}

TEST(RegionMask, ContainsWithWrap) {
  LatticeGeometry g({8, 8, 8, 8});
  // Region wrapping the X boundary: x in {6, 7, 0, 1}.
  RegionMask region(g, {6, 0, 0, 0}, {4, 8, 8, 8});
  EXPECT_TRUE(region.contains({6, 3, 3, 3}));
  EXPECT_TRUE(region.contains({1, 0, 0, 0}));
  EXPECT_FALSE(region.contains({2, 0, 0, 0}));
  EXPECT_FALSE(region.contains({5, 7, 7, 7}));
}

TEST(RegionMask, CrossesAtRegionBoundaryOnly) {
  LatticeGeometry g({8, 8, 8, 8});
  RegionMask region(g, {2, 0, 0, 0}, {4, 8, 8, 8});  // x in [2, 6)
  EXPECT_FALSE(region.crosses({3, 0, 0, 0}, 0, +1));
  EXPECT_TRUE(region.crosses({5, 0, 0, 0}, 0, +1));
  EXPECT_TRUE(region.crosses({2, 0, 0, 0}, 0, -1));
  EXPECT_TRUE(region.crosses({4, 0, 0, 0}, 0, +3));  // path exits at 6
  // Hops starting outside the region are cut in every direction.
  EXPECT_TRUE(region.crosses({0, 7, 0, 0}, 1, +1));
  // Full-extent dimensions are never cut for in-region sites.
  EXPECT_FALSE(region.crosses({3, 7, 0, 0}, 1, +1));
  EXPECT_FALSE(region.crosses({3, 0, 0, 7}, 3, +3));
}

TEST(OverlapSchwarz, ZeroOverlapEqualsAdditiveSchwarz) {
  WilsonSystem sys;
  BlockMask mask(sys.g, {1, 1, 2, 2});
  WilsonCloverOperator<double> dirichlet(sys.u, nullptr, sys.mass, &mask);
  const MrParams mr{6, 1.0};

  SchwarzPreconditioner<WilsonField<double>> additive(dirichlet, mask, mr);
  OverlapSchwarzPreconditioner<WilsonField<double>> overlapped(
      sys.g, mask,
      [&](const LinkCut& cut) {
        return std::make_unique<WilsonCloverOperator<double>>(
            sys.u, nullptr, sys.mass, &cut);
      },
      OverlapSchwarzParams{0, mr});

  WilsonField<double> out_add(sys.g), out_ovl(sys.g);
  additive.apply(out_add, sys.b);
  overlapped.apply(out_ovl, sys.b);
  axpy(-1.0, out_add, out_ovl);
  EXPECT_LT(norm2(out_ovl), 1e-20 * norm2(out_add));
}

TEST(OverlapSchwarz, OverlapReducesOuterIterations) {
  // §3.2: "a larger overlap will typically lead to requiring fewer
  // iterations to reach convergence".
  WilsonSystem sys;
  BlockMask mask(sys.g, {1, 1, 1, 4});
  WilsonCloverOperator<double> dirichlet(sys.u, nullptr, sys.mass, &mask);
  const MrParams mr{6, 1.0};
  auto factory = [&](const LinkCut& cut) {
    return std::make_unique<WilsonCloverOperator<double>>(sys.u, nullptr,
                                                          sys.mass, &cut);
  };

  GcrParams gp;
  gp.tol = 1e-6;
  gp.kmax = 16;

  OverlapSchwarzPreconditioner<WilsonField<double>> o0(
      sys.g, mask, factory, OverlapSchwarzParams{0, mr});
  WilsonField<double> x0(sys.g);
  set_zero(x0);
  const SolverStats s0 = gcr_solve(sys.m, x0, sys.b, &o0, gp);

  OverlapSchwarzPreconditioner<WilsonField<double>> o1(
      sys.g, mask, factory, OverlapSchwarzParams{1, mr});
  WilsonField<double> x1(sys.g);
  set_zero(x1);
  const SolverStats s1 = gcr_solve(sys.m, x1, sys.b, &o1, gp);

  EXPECT_TRUE(s0.converged);
  EXPECT_TRUE(s1.converged);
  EXPECT_LE(s1.iterations, s0.iterations);
  EXPECT_LT(sys.residual(x1), 1e-5);
}

TEST(NormalCg, CgnrSolvesWilson) {
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  CgParams p;
  p.tol = 1e-10;
  p.max_iter = 20000;
  const SolverStats stats = cgnr_solve(sys.m, x, sys.b, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(sys.residual(x), 1e-7);
}

TEST(NormalCg, CgneSolvesWilson) {
  WilsonSystem sys;
  WilsonField<double> x(sys.g);
  set_zero(x);
  CgParams p;
  p.tol = 1e-10;
  p.max_iter = 20000;
  const SolverStats stats = cgne_solve(sys.m, x, sys.b, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(sys.residual(x), 1e-7);
}

TEST(NormalCg, BothAgreeWithEachOther) {
  WilsonSystem sys;
  WilsonField<double> x1(sys.g), x2(sys.g);
  set_zero(x1);
  set_zero(x2);
  CgParams p;
  p.tol = 1e-11;
  p.max_iter = 20000;
  cgnr_solve(sys.m, x1, sys.b, p);
  cgne_solve(sys.m, x2, sys.b, p);
  axpy(-1.0, x2, x1);
  EXPECT_LT(std::sqrt(norm2(x1) / norm2(x2)), 1e-6);
}

TEST(GaugeIo, RoundTripExact) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 174);
  const std::string path = ::testing::TempDir() + "/gauge_roundtrip.lqcd";
  save_gauge(u, path);
  const GaugeField<double> v = load_gauge(path);
  EXPECT_EQ(v.geometry().dims(), g.dims());
  double diff = 0;
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    for (int mu = 0; mu < kNDim; ++mu) {
      diff += norm2(u.link(mu, s) - v.link(mu, s));
    }
  }
  EXPECT_EQ(diff, 0.0);
  EXPECT_EQ(average_plaquette(u), average_plaquette(v));
  std::remove(path.c_str());
}

TEST(GaugeIo, RejectsCorruptedPayload) {
  const LatticeGeometry g({2, 2, 2, 2});
  const GaugeField<double> u = hot_gauge(g, 175);
  const std::string path = ::testing::TempDir() + "/gauge_corrupt.lqcd";
  save_gauge(u, path);
  // Flip one byte in the payload.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 64 + 100, SEEK_SET);
  const unsigned char x = 0xff;
  std::fwrite(&x, 1, 1, f);
  std::fclose(f);
  EXPECT_THROW((void)load_gauge(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GaugeIo, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/gauge_bad_magic.lqcd";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[128] = "not a gauge file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW((void)load_gauge(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GaugeIo, MissingFileThrows) {
  EXPECT_THROW((void)load_gauge("/nonexistent/path/gauge.lqcd"),
               std::runtime_error);
}

TEST(GaugeIo, ChecksumIsStable) {
  const char data[] = "lattice";
  EXPECT_EQ(fnv1a(data, 7), fnv1a(data, 7));
  EXPECT_NE(fnv1a(data, 7), fnv1a(data, 6));
}

}  // namespace
}  // namespace lqcd
