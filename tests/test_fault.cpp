// The fault-injection subsystem and chaos harness: spec-grammar parsing,
// decision-stream determinism, the FNV-1a envelope, and the chaos property
// tests — under seeded fault plans the partitioned operators must either
// complete bitwise-identical to the fault-free run (repairs are
// transparent) or fail with a typed CommError; they must never hang.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "comm/error.h"
#include "comm/virtual_cluster.h"
#include "dirac/partitioned.h"
#include "fault/fault.h"
#include "fields/blas.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "obs/metrics.h"

namespace lqcd {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

/// Hard watchdog: a chaos test must never hang — if the recovery protocol
/// regresses into a deadlock, kill the binary loudly instead of eating the
/// CI timeout.
class Watchdog {
 public:
  explicit Watchdog(std::chrono::seconds limit)
      : limit_(limit), thread_([this] { run(); }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(m_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(m_);
    if (!cv_.wait_for(lock, limit_, [this] { return done_; })) {
      std::fprintf(stderr,
                   "FATAL: chaos watchdog expired after %lld s — deadlock\n",
                   static_cast<long long>(limit_.count()));
      std::_Exit(124);
    }
  }

  std::chrono::seconds limit_;
  std::mutex m_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

class ScopedRankMode {
 public:
  explicit ScopedRankMode(RankMode m) : prev_(rank_mode()) { set_rank_mode(m); }
  ~ScopedRankMode() { set_rank_mode(prev_); }

 private:
  RankMode prev_;
};

int rate_index(FaultKind k) { return static_cast<int>(k); }

std::uint64_t injected_total() {
  std::uint64_t t = 0;
  for (FaultKind k : {FaultKind::Delay, FaultKind::Drop, FaultKind::Duplicate,
                      FaultKind::Reorder, FaultKind::BitFlip}) {
    t += metric_counter(std::string("fault.injected{kind=") +
                        fault_kind_name(k) + "}")
             .value();
  }
  return t;
}

/// Every test starts and ends fault-free, so a `LQCD_FAULTS` environment
/// (the CI chaos job sets one) cannot leak into the fault-free reference
/// runs these tests compare against.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { clear_fault_plan(); }
  void TearDown() override { clear_fault_plan(); }
};

TEST_F(FaultTest, SpecGrammarParsesFullForm) {
  const FaultSpec s = parse_fault_spec(
      "seed=42,drop=0.05,dup=0.02,flip=0.01,reorder=0.02,delay=0.1:250us,"
      "timeout=40ms,retries=3,backoff=1ms");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_DOUBLE_EQ(s.rate_of(FaultKind::Drop), 0.05);
  EXPECT_DOUBLE_EQ(s.rate_of(FaultKind::Duplicate), 0.02);
  EXPECT_DOUBLE_EQ(s.rate_of(FaultKind::BitFlip), 0.01);
  EXPECT_DOUBLE_EQ(s.rate_of(FaultKind::Reorder), 0.02);
  EXPECT_DOUBLE_EQ(s.rate_of(FaultKind::Delay), 0.1);
  EXPECT_EQ(s.delay, microseconds(250));
  EXPECT_EQ(s.recv_timeout, microseconds(40000));
  EXPECT_EQ(s.max_retries, 3);
  EXPECT_EQ(s.backoff, microseconds(1000));
}

TEST_F(FaultTest, SpecGrammarParsesOneShots) {
  const FaultSpec s = parse_fault_spec("seed=7,flip@12,drop@3");
  EXPECT_EQ(s.once_of(FaultKind::BitFlip), 12);
  EXPECT_EQ(s.once_of(FaultKind::Drop), 3);
  EXPECT_EQ(s.once_of(FaultKind::Duplicate), -1);
  // One-shots leave the rates at zero.
  EXPECT_DOUBLE_EQ(s.rate_of(FaultKind::BitFlip), 0.0);
}

TEST_F(FaultTest, SpecGrammarRejectsMalformed) {
  EXPECT_THROW(parse_fault_spec("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop="), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=2.0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("timeout=10parsecs"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("retries=-1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop"), std::invalid_argument);
}

TEST_F(FaultTest, EnvContractInstallsAndClearsPlan) {
  const char* prev = std::getenv("LQCD_FAULTS");
  const std::string saved = prev != nullptr ? prev : "";

  setenv("LQCD_FAULTS", "seed=9,drop=0.5", 1);
  init_faults_from_env();
  ASSERT_NE(active_fault_plan(), nullptr);
  EXPECT_EQ(active_fault_plan()->spec().seed, 9u);

  // A malformed spec disables injection (with a warning) rather than
  // aborting the process.
  setenv("LQCD_FAULTS", "drop=banana", 1);
  init_faults_from_env();
  EXPECT_EQ(active_fault_plan(), nullptr);

  unsetenv("LQCD_FAULTS");
  init_faults_from_env();
  EXPECT_EQ(active_fault_plan(), nullptr);

  if (prev != nullptr) setenv("LQCD_FAULTS", saved.c_str(), 1);
}

TEST_F(FaultTest, DecisionStreamIsSeedDeterministic) {
  FaultSpec spec;
  spec.seed = 77;
  for (int i = 0; i < kNumFaultKinds; ++i) spec.rate[i] = 0.2;
  FaultPlan a(spec), b(spec);
  bool any = false;
  for (std::uint64_t epoch = 0; epoch < 50; ++epoch) {
    for (int src = 0; src < 4; ++src) {
      for (int mu = 0; mu < 4; ++mu) {
        for (int dir = 0; dir < 2; ++dir) {
          const FaultDecision da = a.decide(epoch, src, mu, dir);
          const FaultDecision db = b.decide(epoch, src, mu, dir);
          EXPECT_EQ(da.drop, db.drop);
          EXPECT_EQ(da.duplicate, db.duplicate);
          EXPECT_EQ(da.reorder, db.reorder);
          EXPECT_EQ(da.flip, db.flip);
          EXPECT_EQ(da.delay, db.delay);
          any = any || da.any();
        }
      }
    }
  }
  EXPECT_TRUE(any);  // 20% rates over 1600 slots must inject something

  // A different seed must produce a different injection pattern somewhere.
  spec.seed = 78;
  FaultPlan c(spec);
  bool differs = false;
  for (std::uint64_t epoch = 0; epoch < 50 && !differs; ++epoch) {
    for (int src = 0; src < 4 && !differs; ++src) {
      const FaultDecision da = a.decide(epoch, src, 0, 0);
      const FaultDecision dc = c.decide(epoch, src, 0, 0);
      differs = da.drop != dc.drop || da.flip != dc.flip ||
                da.duplicate != dc.duplicate || da.reorder != dc.reorder;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(FaultTest, Fnv1aMatchesKnownVectors) {
  EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ull);
}

// ---- chaos property tests -------------------------------------------------
//
// For 20 seeded plans mixing drops/dups/delays/reorders/bit-flips at 1-10%
// rates, a partitioned apply in threads mode must either complete with a
// ghost exchange repaired transparently — bitwise-identical result — or
// fail with a typed CommError.  Never a hang (watchdog) and never a third
// outcome (silent corruption).

template <typename Op, typename FieldT>
void run_chaos_sweep(Op& op, const FieldT& in, const FieldT& expect,
                     const LatticeGeometry& g) {
  int completed = 0;
  int failed = 0;
  const std::uint64_t injected_before = injected_total();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultSpec spec;
    spec.seed = seed;
    // 1%..10% per-kind rates, varying with the seed.
    const double rate = 0.01 * static_cast<double>(1 + (seed - 1) % 10);
    for (int i = 0; i < kNumFaultKinds; ++i) spec.rate[i] = rate;
    spec.delay = microseconds(100);
    spec.recv_timeout = microseconds(25000);
    spec.max_retries = 8;
    spec.backoff = microseconds(100);
    set_fault_plan(spec);

    FieldT got(g);
    try {
      op.apply(got, in);
    } catch (const CommError&) {
      ++failed;  // typed failure is an allowed outcome — a hang is not
      continue;
    }
    ++completed;
    // Repairs must be transparent: bitwise-identical to the fault-free run.
    axpy(-1.0, expect, got);
    EXPECT_EQ(norm2(got), 0.0) << "seed " << seed;
  }
  clear_fault_plan();
  EXPECT_EQ(completed + failed, 20);
  // With an 8-retry budget at <= 10% loss the sweep should essentially
  // always complete; assert at least a majority did so the test cannot
  // pass by failing everything.
  EXPECT_GE(completed, 15);
  // The plans actually injected faults (decisions are deterministic, so
  // this is a stable assertion, not a flaky one).
  EXPECT_GT(injected_total(), injected_before);
}

TEST_F(FaultTest, ChaosPartitionedWilsonBitwiseOrTypedError) {
  Watchdog watchdog(std::chrono::seconds(100));
  ScopedRankMode mode(RankMode::Threads);
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 7);
  Partitioning part(g, {1, 1, 2, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 8);
  WilsonField<double> expect(g);
  op.apply(expect, in);  // fault-free reference (fixture cleared the plan)
  run_chaos_sweep(op, in, expect, g);
}

TEST_F(FaultTest, ChaosPartitionedAsqtadBitwiseOrTypedError) {
  Watchdog watchdog(std::chrono::seconds(100));
  ScopedRankMode mode(RankMode::Threads);
  // Long links reach three sites, so partitioned extents must stay >= 4.
  const LatticeGeometry g({4, 4, 8, 8});
  const GaugeField<double> u = hot_gauge(g, 9);
  const AsqtadLinks links = build_asqtad_links(u);
  Partitioning part(g, {1, 1, 2, 2});
  PartitionedStaggered<double> op(part, links.fat, links.lng, 0.05);
  const StaggeredField<double> in = gaussian_staggered_source(g, 10);
  StaggeredField<double> expect(g);
  op.apply(expect, in);
  run_chaos_sweep(op, in, expect, g);
}

TEST_F(FaultTest, RepairedBitFlipIsTransparentAndMetered) {
  Watchdog watchdog(std::chrono::seconds(60));
  ScopedRankMode mode(RankMode::Threads);
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 11);
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 12);
  WilsonField<double> expect(g);
  op.apply(expect, in);

  FaultSpec spec;
  spec.seed = 5;
  spec.once[rate_index(FaultKind::BitFlip)] = 2;  // one corrupted message
  spec.recv_timeout = microseconds(50000);
  spec.max_retries = 4;
  spec.backoff = microseconds(100);
  set_fault_plan(spec);
  const std::uint64_t flips_before =
      metric_counter("fault.injected{kind=flip}").value();
  const std::uint64_t retries_before = metric_counter("comm.retries").value();

  WilsonField<double> got(g);
  op.apply(got, in);
  clear_fault_plan();

  axpy(-1.0, expect, got);
  EXPECT_EQ(norm2(got), 0.0);
  EXPECT_EQ(metric_counter("fault.injected{kind=flip}").value(),
            flips_before + 1);
  EXPECT_GE(metric_counter("comm.retries").value(), retries_before + 1);
}

TEST_F(FaultTest, DuplicatesAndReordersAreDiscardedTransparently) {
  Watchdog watchdog(std::chrono::seconds(60));
  ScopedRankMode mode(RankMode::Threads);
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 13);
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 14);
  WilsonField<double> expect(g);
  op.apply(expect, in);

  // Every message duplicated AND preceded by a stale reordered copy: the
  // seq envelope must shrug it all off without a single retry.
  FaultSpec spec;
  spec.seed = 6;
  spec.rate[rate_index(FaultKind::Duplicate)] = 1.0;
  spec.rate[rate_index(FaultKind::Reorder)] = 1.0;
  spec.recv_timeout = microseconds(50000);
  set_fault_plan(spec);
  const std::uint64_t discards_before =
      metric_counter("comm.discards").value();
  const std::uint64_t retries_before = metric_counter("comm.retries").value();

  WilsonField<double> got(g);
  op.apply(got, in);
  clear_fault_plan();

  axpy(-1.0, expect, got);
  EXPECT_EQ(norm2(got), 0.0);
  EXPECT_GT(metric_counter("comm.discards").value(), discards_before);
  EXPECT_EQ(metric_counter("comm.retries").value(), retries_before);
}

TEST_F(FaultTest, ZeroRatePlanKeepsBitwiseIdentityWithEnvelopeOn) {
  Watchdog watchdog(std::chrono::seconds(60));
  ScopedRankMode mode(RankMode::Threads);
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 15);
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 16);
  WilsonField<double> expect(g);
  op.apply(expect, in);

  FaultSpec spec;  // all rates zero: envelope + verify path, no injections
  set_fault_plan(spec);
  const std::uint64_t injected_before = injected_total();
  WilsonField<double> got(g);
  op.apply(got, in);
  clear_fault_plan();

  axpy(-1.0, expect, got);
  EXPECT_EQ(norm2(got), 0.0);
  EXPECT_EQ(injected_total(), injected_before);
}

TEST_F(FaultTest, ExhaustedRetriesSurfaceTypedTimeoutNotHang) {
  Watchdog watchdog(std::chrono::seconds(60));
  ScopedRankMode mode(RankMode::Threads);
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 17);
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 18);
  WilsonField<double> expect(g);
  op.apply(expect, in);

  // Drop the first message with a zero-retry budget: the receiver's
  // deadline must expire into CommError(Timeout), propagate out of
  // run_ranks, and leave no rank hanging.
  FaultSpec spec;
  spec.seed = 19;
  spec.once[rate_index(FaultKind::Drop)] = 0;
  spec.max_retries = 0;
  spec.recv_timeout = microseconds(20000);
  set_fault_plan(spec);

  WilsonField<double> got(g);
  bool threw = false;
  try {
    op.apply(got, in);
  } catch (const CommError& e) {
    threw = true;
    EXPECT_TRUE(e.code() == CommErrc::Timeout ||
                e.code() == CommErrc::Aborted)
        << comm_errc_name(e.code());
  }
  EXPECT_TRUE(threw);
  clear_fault_plan();

  // The operator (and the cluster runtime) must be reusable after the
  // failure: a clean apply still matches the reference bitwise.
  WilsonField<double> again(g);
  op.apply(again, in);
  axpy(-1.0, expect, again);
  EXPECT_EQ(norm2(again), 0.0);
}

}  // namespace
}  // namespace lqcd
