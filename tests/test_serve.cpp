// The batched multi-RHS solve stack (ISSUE 6): bitwise equivalence of the
// multi-RHS dslash kernels and the lockstep block solvers against N
// independent single-RHS runs (in both virtual-cluster rank modes), the
// bounded request queue, and the SolveService end-to-end — coalescing,
// per-request stats isolation, typed deadline expiry, shutdown semantics,
// and transparent batch repair under injected faults.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "comm/virtual_cluster.h"
#include "core/block_gcr_dd.h"
#include "core/gcr_dd.h"
#include "dirac/even_odd.h"
#include "dirac/multi_rhs.h"
#include "dirac/staggered.h"
#include "dirac/wilson_kernel.h"
#include "dirac/wilson_ops.h"
#include "fault/fault.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/heatbath.h"
#include "gauge/staggered_links.h"
#include "obs/metrics.h"
#include "serve/queue.h"
#include "serve/service.h"
#include "soak/checkpoint.h"
#include "solvers/block_cg.h"
#include "solvers/block_gcr.h"
#include "solvers/cg.h"
#include "solvers/gcr.h"

namespace lqcd {
namespace {

GaugeField<double> thermalized(const LatticeGeometry& g, std::uint64_t seed) {
  GaugeField<double> u = hot_gauge(g, seed);
  HeatbathParams hb;
  hb.beta = 5.9;
  thermalize(u, hb, 3);
  return u;
}

template <typename Field>
void expect_bitwise_equal(const Field& a, const Field& b, const char* what) {
  ASSERT_EQ(a.sites().size_bytes(), b.sites().size_bytes());
  EXPECT_EQ(std::memcmp(a.sites().data(), b.sites().data(),
                        a.sites().size_bytes()),
            0)
      << what;
}

void expect_stats_equal(const SolverStats& a, const SolverStats& b,
                        const char* what) {
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.matvecs, b.matvecs) << what;
  EXPECT_EQ(a.restarts, b.restarts) << what;
  EXPECT_EQ(a.inner_iterations, b.inner_iterations) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
  EXPECT_EQ(a.final_residual, b.final_residual) << what;
  ASSERT_EQ(a.residual_history.size(), b.residual_history.size()) << what;
  for (std::size_t i = 0; i < a.residual_history.size(); ++i) {
    EXPECT_EQ(a.residual_history[i], b.residual_history[i])
        << what << " iter " << i;
  }
}

// ---------------------------------------------------------------------------
// Multi-RHS kernels: per-RHS bitwise identity to the single-RHS twins.
// ---------------------------------------------------------------------------

TEST(MultiRhs, WilsonHopBitwiseMatchesSingle) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 211);
  constexpr int kN = 5;  // not a power of two: exercises a ragged group
  std::vector<WilsonField<double>> in;
  std::vector<WilsonField<double>> out_multi;
  for (int r = 0; r < kN; ++r) {
    in.push_back(gaussian_wilson_source(g, 212u + std::uint64_t(r)));
    out_multi.emplace_back(g);
  }
  std::vector<WilsonField<double>*> outs;
  std::vector<const WilsonField<double>*> ins;
  for (int r = 0; r < kN; ++r) {
    outs.push_back(&out_multi[std::size_t(r)]);
    ins.push_back(&in[std::size_t(r)]);
  }
  for (auto target : {std::optional<Parity>{}, std::optional<Parity>{
                          Parity::Even}, std::optional<Parity>{Parity::Odd}}) {
    wilson_hop_multi(outs, u, ins, target);
    for (int r = 0; r < kN; ++r) {
      WilsonField<double> ref(g);
      set_zero(ref);
      wilson_hop(ref, u, in[std::size_t(r)], target);
      // Restrict the comparison to the written sites when a parity is
      // targeted (the untargeted complement is unspecified scratch).
      const std::int64_t begin =
          target.has_value() && *target == Parity::Odd ? g.half_volume() : 0;
      const std::int64_t end =
          target.has_value() && *target == Parity::Even ? g.half_volume()
                                                        : g.volume();
      for (std::int64_t s = begin; s < end; ++s) {
        EXPECT_EQ(std::memcmp(&out_multi[std::size_t(r)].at(s), &ref.at(s),
                              sizeof(WilsonSpinor<double>)),
                  0)
            << "rhs " << r << " site " << s;
      }
    }
  }
}

TEST(MultiRhs, StaggeredHopBitwiseMatchesSingle) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 221);
  const AsqtadLinks links = build_asqtad_links(u);
  constexpr int kN = 3;
  std::vector<StaggeredField<double>> in;
  std::vector<StaggeredField<double>> out_multi;
  for (int r = 0; r < kN; ++r) {
    in.push_back(gaussian_staggered_source(g, 222u + std::uint64_t(r)));
    out_multi.emplace_back(g);
  }
  std::vector<StaggeredField<double>*> outs;
  std::vector<const StaggeredField<double>*> ins;
  for (int r = 0; r < kN; ++r) {
    outs.push_back(&out_multi[std::size_t(r)]);
    ins.push_back(&in[std::size_t(r)]);
  }
  staggered_hop_multi(outs, links.fat, links.lng, ins);
  for (int r = 0; r < kN; ++r) {
    StaggeredField<double> ref(g);
    set_zero(ref);
    staggered_hop(ref, links.fat, links.lng, in[std::size_t(r)]);
    expect_bitwise_equal(out_multi[std::size_t(r)], ref, "staggered hop");
  }
}

TEST(MultiRhs, WilsonSchurApplyMultiBitwiseMatchesSingle) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 231);
  const CloverField<double> a = build_clover_field(u, 1.0);
  WilsonCloverSchurOperator<double> op(u, &a, 0.1);
  constexpr int kN = 4;
  std::vector<WilsonField<double>> in;
  std::vector<WilsonField<double>> out_multi;
  for (int r = 0; r < kN; ++r) {
    in.push_back(gaussian_wilson_source(g, 232u + std::uint64_t(r)));
    out_multi.emplace_back(g);
  }
  std::vector<WilsonField<double>*> outs;
  std::vector<const WilsonField<double>*> ins;
  for (int r = 0; r < kN; ++r) {
    outs.push_back(&out_multi[std::size_t(r)]);
    ins.push_back(&in[std::size_t(r)]);
  }
  op.apply_multi(outs, ins);
  for (int r = 0; r < kN; ++r) {
    WilsonField<double> ref(g);
    op.apply(ref, in[std::size_t(r)]);
    expect_bitwise_equal(out_multi[std::size_t(r)], ref, "wilson schur");
  }
}

TEST(MultiRhs, StaggeredSchurApplyMultiBitwiseMatchesSingle) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 241);
  const AsqtadLinks links = build_asqtad_links(u);
  StaggeredSchurOperator<double> op(links.fat, links.lng, 0.08, 0.0);
  constexpr int kN = 3;
  std::vector<StaggeredField<double>> in;
  std::vector<StaggeredField<double>> out_multi;
  for (int r = 0; r < kN; ++r) {
    in.push_back(gaussian_staggered_source(g, 242u + std::uint64_t(r)));
    out_multi.emplace_back(g);
  }
  std::vector<StaggeredField<double>*> outs;
  std::vector<const StaggeredField<double>*> ins;
  for (int r = 0; r < kN; ++r) {
    outs.push_back(&out_multi[std::size_t(r)]);
    ins.push_back(&in[std::size_t(r)]);
  }
  op.apply_multi(outs, ins);
  for (int r = 0; r < kN; ++r) {
    StaggeredField<double> ref(g);
    op.apply(ref, in[std::size_t(r)]);
    expect_bitwise_equal(out_multi[std::size_t(r)], ref, "staggered schur");
  }
}

// ---------------------------------------------------------------------------
// Block solvers: lockstep recursions match N independent solves exactly.
// ---------------------------------------------------------------------------

TEST(BlockSolvers, BlockGcrBitwiseMatchesGcr) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 251);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const GaugeField<float> u_f = convert_gauge<float>(u);
  const CloverField<float> a_f = convert_clover<float>(a);
  WilsonCloverSchurOperator<float> op(u_f, &a_f, 0.1);
  NativeMultiRhsOperator<WilsonField<float>, WilsonCloverSchurOperator<float>>
      multi(op);

  constexpr int kN = 3;
  std::vector<WilsonField<float>> b;
  for (int r = 0; r < kN; ++r) {
    b.push_back(
        convert_field<float>(gaussian_wilson_source(g, 252u + std::uint64_t(r))));
    // The Schur system lives on the even sites.
    for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
      b[std::size_t(r)].at(s) = WilsonSpinor<float>{};
    }
  }
  // Unpreconditioned single-precision GCR: a modest tolerance it can reach
  // (the preconditioned full stack is tested at 1e-5 below).
  GcrParams gp;
  gp.tol = 1e-4;

  std::vector<WilsonField<float>> x_block;
  std::vector<WilsonField<float>*> xs;
  std::vector<const WilsonField<float>*> bs;
  for (int r = 0; r < kN; ++r) {
    x_block.emplace_back(g);
    set_zero(x_block[std::size_t(r)]);
  }
  for (int r = 0; r < kN; ++r) {
    xs.push_back(&x_block[std::size_t(r)]);
    bs.push_back(&b[std::size_t(r)]);
  }
  const BlockPreconditioner<WilsonField<float>>* no_precond = nullptr;
  const std::vector<SolverStats> block =
      block_gcr_solve(multi, xs, bs, no_precond, gp);

  for (int r = 0; r < kN; ++r) {
    WilsonField<float> x(g);
    set_zero(x);
    const SolverStats solo = gcr_solve(op, x, b[std::size_t(r)], nullptr, gp);
    EXPECT_TRUE(solo.converged) << "rhs " << r;
    expect_stats_equal(block[std::size_t(r)], solo, "block gcr stats");
    expect_bitwise_equal(x_block[std::size_t(r)], x, "block gcr solution");
  }
}

TEST(BlockSolvers, BlockCgBitwiseMatchesCg) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 261);
  const AsqtadLinks links = build_asqtad_links(u);
  StaggeredSchurOperator<double> op(links.fat, links.lng, 0.08, 0.0);
  NativeMultiRhsOperator<StaggeredField<double>, StaggeredSchurOperator<double>>
      multi(op);

  constexpr int kN = 3;
  std::vector<StaggeredField<double>> b;
  for (int r = 0; r < kN; ++r) {
    b.push_back(gaussian_staggered_source(g, 262u + std::uint64_t(r)));
    for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
      b[std::size_t(r)].at(s) = ColorVector<double>{};
    }
  }
  CgParams cp;
  cp.tol = 1e-7;

  std::vector<StaggeredField<double>> x_block;
  std::vector<StaggeredField<double>*> xs;
  std::vector<const StaggeredField<double>*> bs;
  for (int r = 0; r < kN; ++r) {
    x_block.emplace_back(g);
    set_zero(x_block[std::size_t(r)]);
  }
  for (int r = 0; r < kN; ++r) {
    xs.push_back(&x_block[std::size_t(r)]);
    bs.push_back(&b[std::size_t(r)]);
  }
  const std::vector<SolverStats> block = block_cg_solve(multi, xs, bs, cp);

  for (int r = 0; r < kN; ++r) {
    StaggeredField<double> x(g);
    set_zero(x);
    const SolverStats solo = cg_solve(op, x, b[std::size_t(r)], cp);
    EXPECT_TRUE(solo.converged) << "rhs " << r;
    EXPECT_EQ(block[std::size_t(r)].iterations, solo.iterations);
    EXPECT_EQ(block[std::size_t(r)].matvecs, solo.matvecs);
    EXPECT_EQ(block[std::size_t(r)].converged, solo.converged);
    EXPECT_EQ(block[std::size_t(r)].final_residual, solo.final_residual);
    expect_bitwise_equal(x_block[std::size_t(r)], x, "block cg solution");
  }
}

TEST(BlockSolvers, BlockGcrDdMatchesSingleAcrossRankModes) {
  // Full stack over the virtual cluster: the batched GCR-DD solver must
  // reproduce GcrDdWilsonSolver per RHS — stats, residual trajectory and
  // the solution fields — in both the sequential reference and the
  // concurrent rank runtime.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 271);
  const CloverField<double> a = build_clover_field(u, 1.0);
  constexpr int kN = 3;
  std::vector<WilsonField<double>> b;
  for (int r = 0; r < kN; ++r) {
    b.push_back(gaussian_wilson_source(g, 272u + std::uint64_t(r)));
  }

  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-5;
  p.block_grid = {1, 1, 1, 2};
  p.rank_grid = {{1, 1, 1, 2}};

  for (RankMode mode : {RankMode::Seq, RankMode::Threads}) {
    const RankMode prev = rank_mode();
    set_rank_mode(mode);

    MultiRhsGcrDdWilsonSolver block_solver(u, &a, p);
    std::vector<WilsonField<double>> x_block;
    std::vector<WilsonField<double>*> xs;
    std::vector<const WilsonField<double>*> bs;
    for (int r = 0; r < kN; ++r) x_block.emplace_back(g);
    for (int r = 0; r < kN; ++r) {
      xs.push_back(&x_block[std::size_t(r)]);
      bs.push_back(&b[std::size_t(r)]);
    }
    const std::vector<SolverStats> block = block_solver.solve(xs, bs);

    GcrDdWilsonSolver solo_solver(u, &a, p);
    for (int r = 0; r < kN; ++r) {
      WilsonField<double> x(g);
      const SolverStats solo = solo_solver.solve(x, b[std::size_t(r)]);
      EXPECT_TRUE(solo.converged) << "rhs " << r;
      expect_stats_equal(block[std::size_t(r)], solo, "block gcr-dd stats");
      expect_bitwise_equal(x_block[std::size_t(r)], x, "block gcr-dd solution");
    }
    set_rank_mode(prev);
  }
}

// ---------------------------------------------------------------------------
// BoundedQueue semantics.
// ---------------------------------------------------------------------------

TEST(BoundedQueue, FifoBackpressureAndClose) {
  serve::BoundedQueue<int> q(2, "serve.test.queue.depth");
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.depth(), 2u);

  // A push at capacity blocks until a pop frees a slot.
  std::thread producer([&] {
    int v = 3;
    EXPECT_TRUE(q.push(std::move(v)));
  });
  std::optional<int> first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1);
  producer.join();
  EXPECT_EQ(q.depth(), 2u);

  // close(): queued items drain FIFO, further pushes are rejected.
  q.close();
  int rejected = 9;
  EXPECT_FALSE(q.push(std::move(rejected)));
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumer) {
  serve::BoundedQueue<int> q(4, "serve.test.queue2.depth");
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

// ---------------------------------------------------------------------------
// SolveService end-to-end.
// ---------------------------------------------------------------------------

serve::Config small_service_config(int max_batch) {
  serve::Config cfg;
  cfg.max_batch = max_batch;  // skip the tuning probe in tests
  cfg.solver.mass = 0.1;
  cfg.solver.tol = 1e-5;
  cfg.solver.block_grid = {1, 1, 1, 2};
  return cfg;
}

double true_residual(const GaugeField<double>& u, const CloverField<double>* a,
                     double mass, const WilsonField<double>& x,
                     const WilsonField<double>& b) {
  WilsonCloverOperator<double> m(u, a, mass);
  WilsonField<double> r(x.geometry());
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  return std::sqrt(norm2(r) / norm2(b));
}

TEST(SolveService, BatchedRequestMatchesSequentialRequestsBitwise) {
  // The service-level statement of the lockstep contract: a 2-RHS request
  // dispatched as one batch returns exactly the solutions and stats of the
  // same two RHS submitted (and therefore solved) one at a time.  This is
  // also the per-request stats-isolation regression — nothing about a
  // batch-mate (inner iterations, rollbacks) leaks into a request's stats.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 281);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b1 = gaussian_wilson_source(g, 282);
  const WilsonField<double> b2 = gaussian_wilson_source(g, 283);

  serve::SolveService svc(u, &a, small_service_config(4));
  EXPECT_EQ(svc.batch_width(), 4);

  auto submit_one = [&](const WilsonField<double>& b) {
    serve::Request req;
    req.mass = 0.1;
    req.tol = 1e-5;
    req.rhs.push_back(b);
    return svc.submit(std::move(req)).get();
  };
  // Sequential solo requests (each future awaited before the next submit,
  // so each dispatches as a width-1 batch).
  const serve::Result solo1 = submit_one(b1);
  const serve::Result solo2 = submit_one(b2);
  ASSERT_EQ(solo1.status, serve::Status::Ok);
  ASSERT_EQ(solo2.status, serve::Status::Ok);
  ASSERT_EQ(solo1.stats.size(), 1u);
  EXPECT_TRUE(solo1.stats[0].converged);
  EXPECT_TRUE(solo2.stats[0].converged);

  // One 2-RHS request: dispatched whole as a single batch.
  const std::uint64_t batches_before =
      metrics_snapshot().counter("serve.batches");
  serve::Request both;
  both.mass = 0.1;
  both.tol = 1e-5;
  both.rhs.push_back(b1);
  both.rhs.push_back(b2);
  const serve::Result batched = svc.submit(std::move(both)).get();
  ASSERT_EQ(batched.status, serve::Status::Ok);
  ASSERT_EQ(batched.solutions.size(), 2u);
  ASSERT_EQ(batched.stats.size(), 2u);
  EXPECT_EQ(metrics_snapshot().counter("serve.batches"), batches_before + 1);

  expect_stats_equal(batched.stats[0], solo1.stats[0], "request rhs 0");
  expect_stats_equal(batched.stats[1], solo2.stats[0], "request rhs 1");
  expect_bitwise_equal(batched.solutions[0], solo1.solutions[0], "rhs 0");
  expect_bitwise_equal(batched.solutions[1], solo2.solutions[0], "rhs 1");
  EXPECT_LT(true_residual(u, &a, 0.1, batched.solutions[0], b1), 5e-5);
  EXPECT_LT(true_residual(u, &a, 0.1, batched.solutions[1], b2), 5e-5);

  // Identical re-submission reports identical per-solve stats (no
  // cumulative-counter leakage from the earlier solves).
  const serve::Result again = submit_one(b1);
  ASSERT_EQ(again.status, serve::Status::Ok);
  expect_stats_equal(again.stats[0], solo1.stats[0], "repeat request");
}

TEST(SolveService, CoalescesCompatibleRequests) {
  // Stall the dispatcher with a first request, then enqueue several
  // compatible singles: once the dispatcher frees up it must pull them
  // into shared batches — strictly fewer dispatches than requests.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 291);
  const WilsonField<double> b = gaussian_wilson_source(g, 292);

  const std::uint64_t batches_before =
      metrics_snapshot().counter("serve.batches");
  constexpr int kRequests = 6;
  std::vector<std::future<serve::Result>> futs;
  {
    serve::SolveService svc(u, nullptr, small_service_config(4));
    for (int i = 0; i < kRequests; ++i) {
      serve::Request req;
      req.mass = 0.1;
      req.tol = 1e-5;
      req.rhs.push_back(b);
      futs.push_back(svc.submit(std::move(req)));
    }
    // Destructor shuts down after draining every accepted request.
  }
  std::vector<serve::Result> results;
  results.reserve(futs.size());
  for (auto& f : futs) results.push_back(f.get());
  for (const serve::Result& r : results) {
    ASSERT_EQ(r.status, serve::Status::Ok);
    ASSERT_EQ(r.stats.size(), 1u);
    EXPECT_TRUE(r.stats[0].converged);
    // Identical RHS solved lockstep: every request reports the same solve
    // whatever batch it landed in.
    EXPECT_EQ(r.stats[0].iterations, results[0].stats[0].iterations);
    EXPECT_EQ(r.stats[0].final_residual, results[0].stats[0].final_residual);
    EXPECT_EQ(r.stats[0].inner_iterations,
              results[0].stats[0].inner_iterations);
  }
  const std::uint64_t batches =
      metrics_snapshot().counter("serve.batches") - batches_before;
  EXPECT_GE(batches, 2u);  // at least ceil(6 / 4)
  EXPECT_LE(batches, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(metrics_snapshot().histogram("serve.batch.occupancy").count, 0u);
}

TEST(SolveService, DeadlineExpiryIsTyped) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 301);
  serve::SolveService svc(u, nullptr, small_service_config(4));

  const std::uint64_t expired_before =
      metrics_snapshot().counter("serve.deadline_expired");
  serve::Request req;
  req.mass = 0.1;
  req.tol = 1e-5;
  req.rhs.push_back(gaussian_wilson_source(g, 302));
  req.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);  // already expired
  const serve::Result r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status, serve::Status::DeadlineExpired);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
  EXPECT_TRUE(r.solutions.empty());
  EXPECT_EQ(metrics_snapshot().counter("serve.deadline_expired"),
            expired_before + 1);
}

TEST(SolveService, ShutdownDrainsThenRejects) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 311);
  serve::SolveService svc(u, nullptr, small_service_config(2));

  serve::Request req;
  req.mass = 0.1;
  req.tol = 1e-5;
  req.rhs.push_back(gaussian_wilson_source(g, 312));
  std::future<serve::Result> accepted = svc.submit(std::move(req));
  svc.shutdown();
  // The accepted request completed during the drain.
  EXPECT_EQ(accepted.get().status, serve::Status::Ok);

  serve::Request late;
  late.mass = 0.1;
  late.tol = 1e-5;
  late.rhs.push_back(gaussian_wilson_source(g, 313));
  const serve::Result r = svc.submit(std::move(late)).get();
  EXPECT_EQ(r.status, serve::Status::ShuttingDown);
  EXPECT_FALSE(r.ok());
}

TEST(SolveService, ChaosFaultedBatchRepairsTransparently) {
  // One ghost message is bit-flipped while a 2-RHS batch is in flight over
  // the virtual cluster.  The exchange repairs it, the block solver rolls
  // back exactly the batch in flight, and both requests still converge to
  // tolerance with the rollback recorded in their own stats.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 321);
  const WilsonField<double> b1 = gaussian_wilson_source(g, 322);
  const WilsonField<double> b2 = gaussian_wilson_source(g, 323);

  const RankMode prev = rank_mode();
  set_rank_mode(RankMode::Threads);
  clear_fault_plan();

  serve::Config cfg = small_service_config(4);
  cfg.solver.rank_grid = {{1, 1, 1, 2}};
  cfg.solver.half_krylov = false;
  cfg.solver.half_preconditioner = false;

  const std::uint64_t rollbacks_before =
      metrics_snapshot().counter("solver.rollbacks");
  const std::uint64_t retries_before =
      metrics_snapshot().counter("comm.retries");

  serve::Result r;
  {
    serve::SolveService svc(u, nullptr, cfg);
    // Warm up the solver cache with a fault-free request so the one-shot
    // fault below cannot fire during solver construction; ordinal 40 then
    // lands inside an outer iteration of the batched solve (each per-RHS
    // Schur matvec posts 8 messages on this rank grid, and the initial
    // residuals alone post 16).
    serve::Request warm;
    warm.mass = 0.1;
    warm.tol = 1e-5;
    warm.rhs.push_back(b1);
    ASSERT_EQ(svc.submit(std::move(warm)).get().status, serve::Status::Ok);
    FaultSpec spec;
    spec.seed = 33;
    spec.once[static_cast<int>(FaultKind::BitFlip)] = 40;
    spec.max_retries = 4;
    set_fault_plan(spec);

    serve::Request req;
    req.mass = 0.1;
    req.tol = 1e-5;
    req.rhs.push_back(b1);
    req.rhs.push_back(b2);
    r = svc.submit(std::move(req)).get();
    clear_fault_plan();
  }
  set_rank_mode(prev);

  ASSERT_EQ(r.status, serve::Status::Ok);
  ASSERT_EQ(r.stats.size(), 2u);
  EXPECT_TRUE(r.stats[0].converged);
  EXPECT_TRUE(r.stats[1].converged);
  // The repair fired mid-batch: it was observed as a comm retry and rolled
  // the in-flight batch back.
  EXPECT_GE(metrics_snapshot().counter("comm.retries"), retries_before + 1);
  EXPECT_GE(metrics_snapshot().counter("solver.rollbacks"),
            rollbacks_before + 1);
  EXPECT_GE(r.stats[0].rollbacks + r.stats[1].rollbacks, 1);
  // Transparent repair: both solutions still meet the tolerance.
  EXPECT_LT(true_residual(u, nullptr, 0.1, r.solutions[0], b1), 5e-5);
  EXPECT_LT(true_residual(u, nullptr, 0.1, r.solutions[1], b2), 5e-5);
}

TEST(SolveService, KillRestoreResumesBitwise) {
  // The soak harness's core contract (ISSUE 7): checkpoint a batch
  // mid-solve, drop the service, restore a fresh one from the persisted
  // state, and the resumed requests finish with per-request SolverStats —
  // the residual history included — and solution iterates bitwise
  // identical to an uninterrupted run.  Exercised in both virtual-cluster
  // rank modes with the checkpoint taking the full file round trip.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 331);
  const WilsonField<double> b1 = gaussian_wilson_source(g, 332);
  const WilsonField<double> b2 = gaussian_wilson_source(g, 333);
  clear_fault_plan();  // bitwise comparison is only defined fault-free

  for (RankMode mode : {RankMode::Seq, RankMode::Threads}) {
    const RankMode prev = rank_mode();
    set_rank_mode(mode);
    const char* mode_name = rank_mode_name(mode);

    serve::Config cfg = small_service_config(4);
    cfg.solver.rank_grid = {{1, 1, 1, 2}};
    auto make_request = [&] {
      serve::Request req;
      req.mass = cfg.solver.mass;
      req.tol = cfg.solver.tol;
      req.rhs.push_back(b1);
      req.rhs.push_back(b2);
      return req;
    };

    // Uninterrupted reference run.
    serve::Result reference;
    {
      serve::SolveService svc(u, nullptr, cfg);
      reference = svc.submit(make_request()).get();
    }
    ASSERT_EQ(reference.status, serve::Status::Ok) << mode_name;

    // Killed run: capture at driver round 2, stop, drop the service.
    BlockGcrCheckpoint<WilsonField<float>> captured;
    serve::Result killed;
    {
      serve::Config kill_cfg = cfg;
      kill_cfg.checkpoint.emplace();
      kill_cfg.checkpoint->batch_ordinal = 0;
      kill_cfg.checkpoint->at_round = 2;
      kill_cfg.checkpoint->kill = true;
      kill_cfg.checkpoint->captured = &captured;
      serve::SolveService svc(u, nullptr, kill_cfg);
      killed = svc.submit(make_request()).get();
    }
    ASSERT_TRUE(captured.valid()) << mode_name;
    ASSERT_EQ(killed.status, serve::Status::Interrupted) << mode_name;
    EXPECT_TRUE(killed.solutions.empty()) << mode_name;
    ASSERT_EQ(killed.stats.size(), 2u) << mode_name;
    // The killed run's partial history is a prefix of the reference's.
    for (std::size_t i = 0; i < 2; ++i) {
      const auto& partial = killed.stats[i].residual_history;
      const auto& full = reference.stats[i].residual_history;
      ASSERT_LE(partial.size(), full.size()) << mode_name;
      for (std::size_t k = 0; k < partial.size(); ++k) {
        EXPECT_EQ(partial[k], full[k]) << mode_name << " rhs " << i;
      }
    }

    // Persist through the checkpoint container and read it back, so the
    // restore takes the same path a real process restart would.
    const std::string path =
        std::string("test_serve_kill_restore_") + mode_name + ".ckpt";
    {
      soak::CheckpointWriter w;
      soak::ByteWriter payload;
      soak::put_block_gcr_checkpoint(payload, captured);
      w.section("solver/block_gcr", payload.take());
      w.write(path);
    }
    const soak::CheckpointReader reader = soak::CheckpointReader::open(path);
    soak::ByteReader section = reader.section("solver/block_gcr");
    const BlockGcrCheckpoint<WilsonField<float>> restored =
        soak::get_block_gcr_checkpoint<WilsonField<float>>(section);
    std::remove(path.c_str());

    // Resumed run on a fresh service: must reproduce the reference bitwise.
    serve::Result resumed;
    {
      serve::Config resume_cfg = cfg;
      resume_cfg.resume = &restored;
      serve::SolveService svc(u, nullptr, resume_cfg);
      resumed = svc.submit(make_request()).get();
    }
    ASSERT_EQ(resumed.status, serve::Status::Ok) << mode_name;
    ASSERT_EQ(resumed.stats.size(), 2u) << mode_name;
    for (std::size_t i = 0; i < 2; ++i) {
      expect_stats_equal(reference.stats[i], resumed.stats[i],
                         "kill-restore stats");
      expect_bitwise_equal(reference.solutions[i], resumed.solutions[i],
                           "kill-restore solution");
    }
    set_rank_mode(prev);
  }
}

}  // namespace
}  // namespace lqcd
