// Lane-blocked SoA layout (fields/soa_field.h, dirac/soa_kernel.h,
// fields/soa_blas.h): transmute losslessness, bitwise parity of the SoA
// hop/BLAS fast paths against the AoS kernels across parities, gauge
// formats, block cuts and worker counts, the layout policy axis, and
// identical solver iterates with the SoA operator path enabled.
#include <gtest/gtest.h>

#include <complex>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "dirac/layout_policy.h"
#include "dirac/soa_kernel.h"
#include "dirac/staggered.h"
#include "dirac/wilson_kernel.h"
#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "fields/compressed_gauge.h"
#include "fields/precision.h"
#include "fields/soa_blas.h"
#include "fields/soa_field.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "lattice/block_mask.h"
#include "solvers/gcr.h"
#include "tune/tune_cache.h"
#include "util/parallel_for.h"

namespace lqcd {
namespace {

class SoaTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_worker_count(1);
    unsetenv("LQCD_LAYOUT");
    init_layout_from_env();
    set_tuning_enabled(true);
    global_tune_cache().clear();
  }
};

template <typename Site>
bool fields_equal(const LatticeField<Site>& a, const LatticeField<Site>& b) {
  return a.sites().size_bytes() == b.sites().size_bytes() &&
         std::memcmp(a.sites().data(), b.sites().data(),
                     a.sites().size_bytes()) == 0;
}

// ---------------------------------------------------------------------------
// Containers and transmuters.
// ---------------------------------------------------------------------------

TEST_F(SoaTest, TransmuteRoundTripIsBitwiseLossless) {
  const LatticeGeometry g({4, 4, 4, 4});
  const WilsonField<double> f = gaussian_wilson_source(g, 1);
  SoAWilsonField<double> s(g);
  to_soa(f, s);
  // Per-site gather agrees with the source...
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const WilsonSpinor<double> a = f.at(i);
    const WilsonSpinor<double> b = s.site_at(i);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(a)), 0) << "site " << i;
  }
  // ...and the inverse reorder round-trips exactly.
  WilsonField<double> back(g);
  from_soa(s, back);
  EXPECT_TRUE(fields_equal(f, back));

  const StaggeredField<double> v = gaussian_staggered_source(g, 2);
  SoAStaggeredField<double> sv(g);
  to_soa(v, sv);
  StaggeredField<double> vback(g);
  from_soa(sv, vback);
  EXPECT_TRUE(fields_equal(v, vback));
}

TEST_F(SoaTest, BlockIndexingIsConsistent) {
  const LatticeGeometry g({4, 4, 2, 2});
  SoAWilsonField<float> s(g);
  // Even extents keep every block full; block/lane round-trips the index.
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const std::int64_t b = s.block_of(i);
    EXPECT_EQ(s.first_site(b) + s.lane_of(i), i);
    EXPECT_EQ(s.valid_lanes(b), SoAWilsonField<float>::kLanes);
    EXPECT_LT(b, s.blocks());
  }
  // Blocks never straddle the parity boundary.
  EXPECT_EQ(s.first_site(s.blocks_per_parity()), g.half_volume());
}

TEST_F(SoaTest, GaugePackingMatchesCompressedField) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 3);
  for (Reconstruct r :
       {Reconstruct::None, Reconstruct::Twelve, Reconstruct::Eight}) {
    for (bool half : {false, true}) {
      const SoAGaugeField<double> soa(u, r, half);
      const CompressedGaugeField<double> aos(u, r, half);
      for (int mu = 0; mu < kNDim; ++mu) {
        for (std::int64_t s = 0; s < g.volume(); ++s) {
          const Matrix3<double> a = soa.link(mu, s);
          const Matrix3<double> b = aos.link(mu, s);
          ASSERT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
              << "recon" << to_string(r) << (half ? "/half" : "") << " mu="
              << mu << " s=" << s;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hop kernels: bitwise parity fuzz against the AoS kernels.
// ---------------------------------------------------------------------------

template <typename Real>
void fuzz_wilson_hop() {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> ud = hot_gauge(g, 11);
  const GaugeField<Real> u = convert_gauge<Real>(ud);
  const WilsonField<Real> in =
      convert_field<Real>(gaussian_wilson_source(g, 12));
  const BlockMask mask(g, {2, 1, 1, 2});
  SoAWilsonField<Real> sin(g);
  to_soa(in, sin);
  const std::optional<Parity> targets[] = {std::nullopt, Parity::Even,
                                           Parity::Odd};
  for (Reconstruct r :
       {Reconstruct::None, Reconstruct::Twelve, Reconstruct::Eight}) {
    const SoAGaugeField<Real> su(u, r);
    const CompressedGaugeField<Real> cu(u, r);
    for (const auto& target : targets) {
      for (const LinkCut* m :
           {static_cast<const LinkCut*>(nullptr),
            static_cast<const LinkCut*>(&mask)}) {
        WilsonField<Real> ref(g);
        if (r == Reconstruct::None) {
          wilson_hop(ref, u, in, target, m);
        } else {
          wilson_hop(ref, cu, in, target, m);
        }
        SoAWilsonField<Real> sout(g);
        wilson_hop_soa(sout, su, sin, target, m);
        WilsonField<Real> got(g);
        from_soa(sout, got);
        ASSERT_TRUE(fields_equal(ref, got))
            << "recon" << to_string(r) << " target="
            << (target.has_value()
                    ? (*target == Parity::Even ? "e" : "o")
                    : "full")
            << " mask=" << (m != nullptr);
      }
    }
  }
}

TEST_F(SoaTest, WilsonHopBitwiseMatchesAoSDouble) { fuzz_wilson_hop<double>(); }
TEST_F(SoaTest, WilsonHopBitwiseMatchesAoSFloat) { fuzz_wilson_hop<float>(); }

TEST_F(SoaTest, StaggeredHopBitwiseMatchesAoS) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 13);
  const AsqtadLinks links = build_asqtad_links(u);
  const StaggeredField<double> in = gaussian_staggered_source(g, 14);
  const BlockMask mask(g, {1, 2, 1, 2});
  const SoAGaugeField<double> fat(links.fat, Reconstruct::None);
  const SoAGaugeField<double> lng(links.lng, Reconstruct::None);
  SoAStaggeredField<double> sin(g);
  to_soa(in, sin);
  const std::optional<Parity> targets[] = {std::nullopt, Parity::Even,
                                           Parity::Odd};
  for (const auto& target : targets) {
    for (const LinkCut* m :
         {static_cast<const LinkCut*>(nullptr),
          static_cast<const LinkCut*>(&mask)}) {
      StaggeredField<double> ref(g);
      staggered_hop(ref, links.fat, links.lng, in, target, m);
      SoAStaggeredField<double> sout(g);
      staggered_hop_soa(sout, fat, lng, sin, target, m);
      StaggeredField<double> got(g);
      from_soa(sout, got);
      ASSERT_TRUE(fields_equal(ref, got)) << "mask=" << (m != nullptr);
    }
  }
}

TEST_F(SoaTest, HopBitwiseIndependentOfWorkerCount) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 15);
  const WilsonField<double> in = gaussian_wilson_source(g, 16);
  const SoAGaugeField<double> su(u, Reconstruct::Twelve);
  SoAWilsonField<double> sin(g), out1(g), out4(g);
  to_soa(in, sin);
  set_worker_count(1);
  wilson_hop_soa(out1, su, sin);
  set_worker_count(4);
  wilson_hop_soa(out4, su, sin);
  EXPECT_EQ(std::memcmp(out1.raw().data(), out4.raw().data(),
                        out1.raw().size_bytes()),
            0);
}

// ---------------------------------------------------------------------------
// Fused SoA BLAS.
// ---------------------------------------------------------------------------

TEST_F(SoaTest, ElementwiseBlasBitwiseMatchesAoS) {
  const LatticeGeometry g({4, 4, 4, 4});
  WilsonField<double> x = gaussian_wilson_source(g, 21);
  WilsonField<double> y = gaussian_wilson_source(g, 22);
  SoAWilsonField<double> sx(g), sy(g);
  to_soa(x, sx);
  to_soa(y, sy);
  const std::complex<double> ca(0.3, -1.1);

  scale(0.7, x);
  soa_scale(0.7, sx);
  axpy(1.3, x, y);
  soa_axpy(1.3, sx, sy);
  xpay(x, -0.2, y);
  soa_xpay(sx, -0.2, sy);
  axpby(0.4, x, -1.7, y);
  soa_axpby(0.4, sx, -1.7, sy);
  caxpy(ca, x, y);
  soa_caxpy(ca, sx, sy);

  WilsonField<double> gx(g), gy(g);
  from_soa(sx, gx);
  from_soa(sy, gy);
  EXPECT_TRUE(fields_equal(x, gx));
  EXPECT_TRUE(fields_equal(y, gy));

  SoAWilsonField<double> sz(g);
  soa_copy(sz, sy);
  WilsonField<double> gz(g);
  from_soa(sz, gz);
  EXPECT_TRUE(fields_equal(y, gz));
}

TEST_F(SoaTest, ReductionsMatchAoSCloselyAndAreWorkerIndependent) {
  const LatticeGeometry g({4, 4, 4, 4});
  const WilsonField<double> x = gaussian_wilson_source(g, 23);
  const WilsonField<double> y = gaussian_wilson_source(g, 24);
  SoAWilsonField<double> sx(g), sy(g);
  to_soa(x, sx);
  to_soa(y, sy);

  // Values agree to rounding (the summation *order* differs by design —
  // lane-block-major vs site-major; see fields/soa_blas.h).
  const double n2 = norm2(x);
  EXPECT_NEAR(soa_norm2(sx), n2, 1e-12 * n2);
  const std::complex<double> d = dot(x, y);
  EXPECT_NEAR(std::abs(soa_cdot(sx, sy) - d), 0.0, 1e-12 * std::abs(d));

  // Bitwise independent of the worker count (fixed chunk grid + lane
  // order).
  set_worker_count(1);
  const double a1 = soa_norm2(sx);
  const std::complex<double> c1 = soa_cdot(sx, sy);
  set_worker_count(6);
  const double a6 = soa_norm2(sx);
  const std::complex<double> c6 = soa_cdot(sx, sy);
  EXPECT_EQ(std::memcmp(&a1, &a6, sizeof(a1)), 0);
  EXPECT_EQ(std::memcmp(&c1, &c6, sizeof(c1)), 0);
}

TEST_F(SoaTest, FusedCaxpyNorm2MatchesUnfusedBitwise) {
  const LatticeGeometry g({4, 4, 4, 4});
  const WilsonField<double> x = gaussian_wilson_source(g, 25);
  const WilsonField<double> y = gaussian_wilson_source(g, 26);
  const std::complex<double> a(-0.8, 0.45);
  SoAWilsonField<double> sx(g), fused(g), unfused(g);
  to_soa(x, sx);
  to_soa(y, fused);
  to_soa(y, unfused);
  const double fused_n2 = soa_caxpy_norm2(a, sx, fused);
  soa_caxpy(a, sx, unfused);
  const double unfused_n2 = soa_norm2(unfused);
  EXPECT_EQ(std::memcmp(fused.raw().data(), unfused.raw().data(),
                        fused.raw().size_bytes()),
            0);
  EXPECT_EQ(std::memcmp(&fused_n2, &unfused_n2, sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// Layout policy axis and the operator wiring.
// ---------------------------------------------------------------------------

TEST_F(SoaTest, OperatorHonoursForcedLayoutBitwise) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 31);
  const CloverField<double> a = build_clover_field(u, 1.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 32);

  setenv("LQCD_LAYOUT", "aos", 1);
  init_layout_from_env();
  WilsonCloverOperator<double> maos(u, &a, -0.2);
  ASSERT_EQ(maos.layout(), Layout::AoS);
  WilsonField<double> out_aos(g);
  maos.apply(out_aos, in);

  setenv("LQCD_LAYOUT", "soa", 1);
  init_layout_from_env();
  WilsonCloverOperator<double> msoa(u, &a, -0.2);
  ASSERT_EQ(msoa.layout(), Layout::SoA);
  WilsonField<double> out_soa(g);
  msoa.apply(out_soa, in);

  EXPECT_TRUE(fields_equal(out_aos, out_soa));
}

TEST_F(SoaTest, ForcedLayoutAppliesWithReconFormats) {
  // SoA x recon composition through the operator (the SoA gauge inherits
  // the compressed codec bit for bit).
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 33);
  const WilsonField<double> in = gaussian_wilson_source(g, 34);
  for (Reconstruct r : {Reconstruct::Twelve, Reconstruct::Eight}) {
    setenv("LQCD_LAYOUT", "aos", 1);
    init_layout_from_env();
    WilsonCloverOperator<double> maos(u, nullptr, 0.1, nullptr, r);
    WilsonField<double> out_aos(g);
    maos.apply(out_aos, in);

    setenv("LQCD_LAYOUT", "soa", 1);
    init_layout_from_env();
    WilsonCloverOperator<double> msoa(u, nullptr, 0.1, nullptr, r);
    WilsonField<double> out_soa(g);
    msoa.apply(out_soa, in);
    EXPECT_TRUE(fields_equal(out_aos, out_soa)) << "recon" << to_string(r);
  }
}

TEST_F(SoaTest, TuneSweepRecordsLayoutAxis) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 35);
  setenv("LQCD_LAYOUT", "tune", 1);
  init_layout_from_env();
  set_tuning_enabled(true);
  global_tune_cache().clear();
  WilsonCloverOperator<double> m(u, nullptr, 0.1);
  bool found = false;
  for (const auto& [key, res] : global_tune_cache().entries()) {
    if (key.kernel == "wilson_clover_layout") {
      found = true;
      EXPECT_TRUE(res.param == "layout=aos" || res.param == "layout=soa");
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(m.layout() == Layout::AoS || m.layout() == Layout::SoA);
}

TEST_F(SoaTest, GcrIteratesBitwiseIdenticalAcrossLayouts) {
  // A full GCR solve driven by the SoA operator path produces the exact
  // iterate sequence of the AoS path: every residual and the solution are
  // bit-identical, in both rank-mode settings of the worker pool.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> ud = hot_gauge(g, 41);
  const GaugeField<float> u = convert_gauge<float>(ud);
  const WilsonField<float> b =
      convert_field<float>(gaussian_wilson_source(g, 42));
  GcrParams p;
  p.tol = 1e-4;

  SolverStats stats[2];
  WilsonField<float> x[2] = {WilsonField<float>(g), WilsonField<float>(g)};
  const char* layouts[2] = {"aos", "soa"};
  for (int i = 0; i < 2; ++i) {
    setenv("LQCD_LAYOUT", layouts[i], 1);
    init_layout_from_env();
    WilsonCloverOperator<float> m(u, nullptr, 0.3);
    ASSERT_EQ(m.layout(), i == 0 ? Layout::AoS : Layout::SoA);
    set_zero(x[i]);
    stats[i] = gcr_solve(m, x[i], b, nullptr, p);
    EXPECT_TRUE(stats[i].converged);
  }
  ASSERT_EQ(stats[0].iterations, stats[1].iterations);
  ASSERT_EQ(stats[0].residual_history.size(),
            stats[1].residual_history.size());
  EXPECT_EQ(std::memcmp(stats[0].residual_history.data(),
                        stats[1].residual_history.data(),
                        stats[0].residual_history.size() * sizeof(double)),
            0);
  EXPECT_TRUE(fields_equal(x[0], x[1]));
}

}  // namespace
}  // namespace lqcd
