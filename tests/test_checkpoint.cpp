// Checkpoint container and component-serializer tests (soak/checkpoint.h):
// bitwise round trips for every checkpointable component, typed rejection
// of corrupt/truncated/incompatible files, and a real mid-solve GCR
// capture surviving serialization bitwise.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gcr_dd.h"
#include "fault/fault.h"
#include "gauge/configure.h"
#include "gauge/heatbath.h"
#include "obs/metrics.h"
#include "soak/checkpoint.h"
#include "tune/tune_cache.h"
#include "util/rng.h"

namespace lqcd {
namespace {

using soak::ByteReader;
using soak::ByteWriter;
using soak::CheckpointError;
using soak::CheckpointReader;
using soak::CheckpointWriter;

template <typename Field>
void expect_bitwise_equal(const Field& a, const Field& b, const char* what) {
  ASSERT_EQ(a.sites().size_bytes(), b.sites().size_bytes()) << what;
  EXPECT_EQ(std::memcmp(a.sites().data(), b.sites().data(),
                        a.sites().size_bytes()),
            0)
      << what;
}

/// Rewrites the whole-file trailer after a deliberate in-place edit, so a
/// test can target the *section* checksums / version check specifically.
std::vector<std::uint8_t> with_fixed_trailer(std::vector<std::uint8_t> img) {
  const std::size_t body = img.size() - 8;
  const std::uint64_t sum = fnv1a(img.data(), body);
  for (int i = 0; i < 8; ++i) {
    img[body + std::size_t(i)] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
  return img;
}

CheckpointError::Kind kind_of(const std::vector<std::uint8_t>& img) {
  try {
    CheckpointReader::from_bytes(img);
  } catch (const CheckpointError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected the image to be rejected";
  return CheckpointError::Kind::Io;
}

// ---------------------------------------------------------------------------
// Byte-level primitives.
// ---------------------------------------------------------------------------

TEST(ByteCodec, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-17);
  w.i64(-1234567890123ll);
  w.f64(-0.1);           // not exactly representable: bit pattern must survive
  w.f64(1e308);
  w.boolean(true);
  w.str("hello checkpoint");
  ByteReader r{std::span<const std::uint8_t>(w.bytes())};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -17);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  const double d = r.f64();
  double expect = -0.1;
  EXPECT_EQ(std::memcmp(&d, &expect, sizeof d), 0);
  EXPECT_EQ(r.f64(), 1e308);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello checkpoint");
  EXPECT_TRUE(r.at_end());
}

TEST(ByteCodec, OverrunThrowsBadPayload) {
  ByteWriter w;
  w.u32(7);
  ByteReader r{std::span<const std::uint8_t>(w.bytes())};
  (void)r.u32();
  try {
    (void)r.u64();
    FAIL() << "expected BadPayload";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::BadPayload);
  }
}

// ---------------------------------------------------------------------------
// Component round trips.
// ---------------------------------------------------------------------------

TEST(CheckpointComponents, RngStateRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 13; ++i) (void)rng.uniform();
  (void)rng.gaussian();  // prime the Box-Muller cache: part of the state
  const RngState before = rng.state();
  ByteWriter w;
  soak::put_rng(w, before);
  ByteReader r{std::span<const std::uint8_t>(w.bytes())};
  const RngState after = soak::get_rng(r);
  EXPECT_EQ(before, after);
  // The restored stream continues bitwise.
  Rng restored = Rng::from_state(after);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.gaussian(), restored.gaussian());
}

TEST(CheckpointComponents, SolverStatsRoundTrip) {
  SolverStats s;
  s.iterations = 42;
  s.matvecs = 97;
  s.restarts = 3;
  s.final_residual = 7.25e-6;
  s.converged = true;
  s.inner_iterations = 420;
  s.residual_history = {1.0, 0.31, 0.044, 9.1e-3, 7.25e-6};
  s.rollbacks = 2;
  s.rollback_iterations = {11, 29};
  ByteWriter w;
  soak::put_solver_stats(w, s);
  ByteReader r{std::span<const std::uint8_t>(w.bytes())};
  const SolverStats t = soak::get_solver_stats(r);
  EXPECT_EQ(t.iterations, s.iterations);
  EXPECT_EQ(t.matvecs, s.matvecs);
  EXPECT_EQ(t.restarts, s.restarts);
  EXPECT_EQ(t.final_residual, s.final_residual);
  EXPECT_EQ(t.converged, s.converged);
  EXPECT_EQ(t.inner_iterations, s.inner_iterations);
  EXPECT_EQ(t.residual_history, s.residual_history);
  EXPECT_EQ(t.rollbacks, s.rollbacks);
  EXPECT_EQ(t.rollback_iterations, s.rollback_iterations);
}

TEST(CheckpointComponents, TuneEntriesRoundTrip) {
  std::map<TuneKey, TuneResult> entries;
  entries[{"dslash", "prec=f32,parity=even", 2048, 4}] = {"chunks=32", 41.5,
                                                          63.0};
  entries[{"blas.axpy", "", 4096, 1}] = {"chunks=8", 3.25, 3.5};
  ByteWriter w;
  soak::put_tune_entries(w, entries);
  ByteReader r{std::span<const std::uint8_t>(w.bytes())};
  const auto back = soak::get_tune_entries(r);
  ASSERT_EQ(back.size(), entries.size());
  for (const auto& [key, result] : entries) {
    auto it = back.find(key);
    ASSERT_NE(it, back.end()) << key.kernel;
    EXPECT_EQ(it->second.param, result.param);
    EXPECT_EQ(it->second.best_us, result.best_us);
    EXPECT_EQ(it->second.default_us, result.default_us);
  }
  // import_entries installs the decoded rows without touching stats.
  TuneCache cache;
  const TuneCacheStats stats_before = cache.stats();
  cache.import_entries(back);
  EXPECT_EQ(cache.size(), entries.size());
  EXPECT_EQ(cache.stats().hits, stats_before.hits);
  EXPECT_EQ(cache.stats().misses, stats_before.misses);
}

TEST(CheckpointComponents, MetricsSnapshotRoundTripAndRestore) {
  reset_metrics();
  metric_counter("ckpt.test.counter").add(17);
  metric_gauge("ckpt.test.gauge").set(2.5);
  metric_histogram("ckpt.test.hist").record(0.125);
  metric_histogram("ckpt.test.hist").record(4.0);
  const MetricsSnapshot before = metrics_snapshot();

  ByteWriter w;
  soak::put_metrics(w, before);
  ByteReader r{std::span<const std::uint8_t>(w.bytes())};
  const MetricsSnapshot decoded = soak::get_metrics(r);
  EXPECT_EQ(decoded.counter("ckpt.test.counter"), 17u);
  EXPECT_EQ(decoded.gauge("ckpt.test.gauge"), 2.5);
  EXPECT_EQ(decoded.histogram("ckpt.test.hist").count, 2u);
  EXPECT_EQ(decoded.histogram("ckpt.test.hist").sum, 4.125);

  // Perturb the registry, then restore: the snapshot must match `before`
  // exactly (perturbations zeroed or overwritten).
  metric_counter("ckpt.test.counter").add(100);
  metric_counter("ckpt.test.other").add(5);
  restore_metrics(decoded);
  const MetricsSnapshot after = metrics_snapshot();
  EXPECT_EQ(after.counter("ckpt.test.counter"), 17u);
  EXPECT_EQ(after.counter("ckpt.test.other"), 0u);
  EXPECT_EQ(after.gauge("ckpt.test.gauge"), 2.5);
  EXPECT_EQ(after.histogram("ckpt.test.hist").count, 2u);
}

TEST(CheckpointComponents, FieldRoundTripIsBitwise) {
  const LatticeGeometry g({4, 4, 4, 4});
  const WilsonField<double> f = gaussian_wilson_source(g, 7);
  ByteWriter w;
  soak::put_field(w, f);
  ByteReader r{std::span<const std::uint8_t>(w.bytes())};
  const WilsonField<double> back = soak::get_field<WilsonSpinor<double>>(r);
  ASSERT_EQ(back.geometry().dims(), g.dims());
  expect_bitwise_equal(f, back, "field payload");
}

TEST(CheckpointComponents, MidSolveGcrCaptureSurvivesSerialization) {
  // Capture a real GCR-DD solve mid-flight and require the decoded
  // checkpoint to be bitwise identical member by member.
  const LatticeGeometry g({4, 4, 4, 8});
  GaugeField<double> u = hot_gauge(g, 41);
  HeatbathParams hb;
  hb.beta = 5.9;
  thermalize(u, hb, 3);
  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-5;
  p.block_grid = {1, 1, 1, 2};
  GcrDdWilsonSolver solver(u, nullptr, p);
  const WilsonField<double> b = gaussian_wilson_source(g, 43);

  GcrCheckpoint<WilsonField<float>> captured;
  GcrCheckpointIo<WilsonField<float>> io;
  io.capture_at = 2;
  io.captured = &captured;
  io.stop_after_capture = true;
  WilsonField<double> x(g);
  (void)solver.solve(x, b, &io);
  ASSERT_TRUE(captured.valid());

  ByteWriter w;
  soak::put_gcr_checkpoint(w, captured);
  ByteReader r{std::span<const std::uint8_t>(w.bytes())};
  const auto back = soak::get_gcr_checkpoint<WilsonField<float>>(r);
  EXPECT_EQ(back.k, captured.k);
  EXPECT_EQ(back.rnorm, captured.rnorm);
  EXPECT_EQ(back.cycle_start_norm, captured.cycle_start_norm);
  EXPECT_EQ(back.stats.iterations, captured.stats.iterations);
  EXPECT_EQ(back.stats.residual_history, captured.stats.residual_history);
  expect_bitwise_equal(*back.x, *captured.x, "checkpoint iterate");
  expect_bitwise_equal(*back.rhat, *captured.rhat, "checkpoint residual");
  ASSERT_EQ(back.p.size(), captured.p.size());
  ASSERT_EQ(back.z.size(), captured.z.size());
  for (std::size_t i = 0; i < back.p.size(); ++i) {
    expect_bitwise_equal(back.p[i], captured.p[i], "krylov p");
    expect_bitwise_equal(back.z[i], captured.z[i], "krylov z");
  }
  EXPECT_EQ(back.beta, captured.beta);
  EXPECT_EQ(back.gamma, captured.gamma);
  EXPECT_EQ(back.alpha, captured.alpha);
}

// ---------------------------------------------------------------------------
// Container validation: typed rejection of defective files.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> sample_image() {
  CheckpointWriter w;
  ByteWriter payload;
  soak::put_rng(payload, Rng(5).state());
  w.section("rng/test", payload.take());
  ByteWriter second;
  second.str("another section");
  w.section("aux", second.take());
  return w.bytes();
}

TEST(CheckpointContainer, RoundTripThroughFile) {
  const std::string path = "test_checkpoint_roundtrip.ckpt";
  CheckpointWriter w;
  ByteWriter payload;
  soak::put_rng(payload, Rng(5).state());
  w.section("rng/test", payload.take());
  w.write(path);
  // Atomic write leaves no temp file behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  const CheckpointReader r = CheckpointReader::open(path);
  EXPECT_TRUE(r.has("rng/test"));
  ByteReader s = r.section("rng/test");
  EXPECT_EQ(soak::get_rng(s), Rng(5).state());
  std::remove(path.c_str());
}

TEST(CheckpointContainer, MissingSectionIsTyped) {
  const CheckpointReader r = CheckpointReader::from_bytes(sample_image());
  EXPECT_FALSE(r.has("absent"));
  try {
    (void)r.section("absent");
    FAIL() << "expected MissingSection";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::MissingSection);
  }
}

TEST(CheckpointContainer, BadMagicIsTyped) {
  std::vector<std::uint8_t> img = sample_image();
  img[0] ^= 0xff;
  EXPECT_EQ(kind_of(with_fixed_trailer(std::move(img))),
            CheckpointError::Kind::BadMagic);
}

TEST(CheckpointContainer, VersionMismatchIsTyped) {
  std::vector<std::uint8_t> img = sample_image();
  img[8] += 1;  // bump the little-endian version field
  EXPECT_EQ(kind_of(with_fixed_trailer(std::move(img))),
            CheckpointError::Kind::VersionMismatch);
}

TEST(CheckpointContainer, FlippedPayloadByteIsCorrupt) {
  std::vector<std::uint8_t> img = sample_image();
  img[img.size() - 12] ^= 0x01;  // inside the last section's payload
  // Without a trailer fixup the whole-file checksum trips first...
  EXPECT_EQ(kind_of(img), CheckpointError::Kind::Corrupt);
  // ...and with the trailer recomputed, the per-section checksum trips.
  EXPECT_EQ(kind_of(with_fixed_trailer(std::move(img))),
            CheckpointError::Kind::Corrupt);
}

TEST(CheckpointContainer, TruncationIsTyped) {
  std::vector<std::uint8_t> img = sample_image();
  // Shorter than the fixed header: typed Truncated.
  std::vector<std::uint8_t> tiny(img.begin(), img.begin() + 6);
  EXPECT_EQ(kind_of(tiny), CheckpointError::Kind::Truncated);
  // Cut mid-payload: the trailer can no longer match — typed Corrupt.
  std::vector<std::uint8_t> cut(img.begin(),
                                img.begin() + std::ptrdiff_t(img.size() - 10));
  EXPECT_EQ(kind_of(cut), CheckpointError::Kind::Corrupt);
  // A section whose declared length runs past the file (lengths edited,
  // trailer fixed up): typed Truncated.
  std::vector<std::uint8_t> lying = img;
  // Section table starts after magic+version+count; name_len of the first
  // section is at offset 16, name "rng/test" (8 bytes) at 20, payload_len
  // at 28.
  lying[28] = 0xff;
  EXPECT_EQ(kind_of(with_fixed_trailer(std::move(lying))),
            CheckpointError::Kind::Truncated);
}

TEST(CheckpointContainer, MalformedPayloadIsTyped) {
  CheckpointWriter w;
  ByteWriter payload;
  payload.u8(1);  // far too short to be an RngState
  w.section("rng/short", payload.take());
  const CheckpointReader r = CheckpointReader::from_bytes(w.bytes());
  ByteReader s = r.section("rng/short");
  try {
    (void)soak::get_rng(s);
    FAIL() << "expected BadPayload";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::BadPayload);
  }
}

TEST(CheckpointContainer, IoErrorIsTyped) {
  try {
    (void)CheckpointReader::open("definitely/not/a/real/path.ckpt");
    FAIL() << "expected Io";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::Io);
  }
}

TEST(CheckpointContainer, SectionReplacesByName) {
  CheckpointWriter w;
  ByteWriter first;
  first.u32(1);
  w.section("dup", first.take());
  ByteWriter second;
  second.u32(2);
  w.section("dup", second.take());
  const CheckpointReader r = CheckpointReader::from_bytes(w.bytes());
  ByteReader s = r.section("dup");
  EXPECT_EQ(s.u32(), 2u);
  EXPECT_EQ(r.section_names().size(), 1u);
}

}  // namespace
}  // namespace lqcd
