// High-level API: both Wilson solver stacks and the staggered multi-shift
// path through the public facade.
#include <gtest/gtest.h>

#include "core/facade.h"
#include "dirac/staggered.h"
#include "fields/blas.h"
#include "gauge/configure.h"
#include "gauge/heatbath.h"

namespace lqcd {
namespace {

TEST(Facade, WilsonCloverGcrDd) {
  const LatticeGeometry g({4, 4, 4, 8});
  GaugeField<double> u = hot_gauge(g, 161);
  HeatbathParams hb;
  hb.beta = 6.0;
  thermalize(u, hb, 2);

  const WilsonField<double> b = gaussian_wilson_source(g, 162);
  WilsonField<double> x(g);
  WilsonSolveRequest req;
  req.mass = 0.1;
  req.csw = 1.0;
  req.tol = 1e-5;
  req.kind = WilsonSolverKind::GcrDd;
  req.block_grid = {1, 1, 1, 2};
  const WilsonSolveOutcome out = solve_wilson_clover(u, b, x, req);
  EXPECT_TRUE(out.stats.converged);
  EXPECT_LT(out.true_residual, 5e-5);
}

TEST(Facade, WilsonCloverMixedBiCgStab) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = weak_gauge(g, 163, 0.4);
  const WilsonField<double> b = gaussian_wilson_source(g, 164);
  WilsonField<double> x(g);
  WilsonSolveRequest req;
  req.mass = 0.15;
  req.csw = 1.0;
  req.tol = 1e-8;
  req.kind = WilsonSolverKind::MixedBiCgStab;
  const WilsonSolveOutcome out = solve_wilson_clover(u, b, x, req);
  EXPECT_TRUE(out.stats.converged);
  EXPECT_LT(out.true_residual, 1e-7);
}

TEST(Facade, BothSolversAgree) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = weak_gauge(g, 165, 0.3);
  const WilsonField<double> b = gaussian_wilson_source(g, 166);

  WilsonSolveRequest req;
  req.mass = 0.2;
  req.csw = 1.0;
  req.tol = 1e-6;
  WilsonField<double> x1(g), x2(g);
  req.kind = WilsonSolverKind::GcrDd;
  req.block_grid = {1, 1, 1, 2};
  solve_wilson_clover(u, b, x1, req);
  req.kind = WilsonSolverKind::MixedBiCgStab;
  solve_wilson_clover(u, b, x2, req);
  axpy(-1.0, x2, x1);
  EXPECT_LT(std::sqrt(norm2(x1) / norm2(x2)), 1e-4);
}

TEST(Facade, StaggeredMultishiftThroughThinLinks) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 167);
  StaggeredField<double> b = gaussian_staggered_source(g, 168);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    b.at(s) = ColorVector<double>{};
  }
  StaggeredSolveRequest req;
  req.mass = 0.1;
  req.shifts = {0.0, 0.1};
  req.tol = 1e-9;
  const StaggeredMultishiftResult result =
      solve_staggered_multishift(u, b, req);
  ASSERT_EQ(result.solutions.size(), 2u);

  // Verify against operators built from the same smearing path.
  const AsqtadLinks links = build_asqtad_links(u, req.coefficients);
  for (std::size_t i = 0; i < req.shifts.size(); ++i) {
    StaggeredSchurOperator<double> op(links.fat, links.lng, req.mass,
                                      req.shifts[i]);
    StaggeredField<double> r(g);
    op.apply(r, result.solutions[i]);
    scale(-1.0, r);
    axpy(1.0, b, r);
    EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 1e-8);
  }
}

TEST(Facade, DistributedSolveMatchesSingleDomain) {
  const LatticeGeometry g({4, 4, 4, 8});
  GaugeField<double> u = hot_gauge(g, 171);
  HeatbathParams hb;
  hb.beta = 6.0;
  thermalize(u, hb, 2);
  const WilsonField<double> b = gaussian_wilson_source(g, 172);

  WilsonSolveRequest req;
  req.mass = 0.1;
  req.csw = 1.0;
  req.tol = 1e-6;
  req.block_grid = {1, 1, 2, 2};

  WilsonField<double> x_dist(g);
  const DistributedSolveOutcome dist =
      solve_wilson_clover_distributed(u, b, x_dist, req, {1, 1, 2, 2});
  EXPECT_TRUE(dist.stats.converged);
  EXPECT_LT(dist.true_residual, 1e-5);
  EXPECT_EQ(dist.precond_ghost_bytes, 0u);   // Schwarz is communication-free
  EXPECT_GT(dist.outer_ghost_bytes, 0u);
  EXPECT_GT(dist.gauge_ghost_bytes, 0u);

  WilsonField<double> x_single(g);
  req.kind = WilsonSolverKind::GcrDd;
  const WilsonSolveOutcome single = solve_wilson_clover(u, b, x_single, req);
  EXPECT_TRUE(single.stats.converged);
  WilsonField<double> diff = x_dist;
  axpy(-1.0, x_single, diff);
  EXPECT_LT(std::sqrt(norm2(diff) / norm2(x_single)), 1e-4);
}

TEST(Facade, ResidualHelperConsistent) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = weak_gauge(g, 169, 0.2);
  const WilsonField<double> b = gaussian_wilson_source(g, 170);
  WilsonField<double> x(g);
  set_zero(x);
  // Zero guess: residual = 1 exactly.
  EXPECT_NEAR(wilson_clover_residual(u, 0.1, 1.0, x, b), 1.0, 1e-12);
}

}  // namespace
}  // namespace lqcd
