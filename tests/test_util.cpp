// Utility layer: CLI parsing, logging levels, timers.
#include <gtest/gtest.h>

#include "util/cli.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace lqcd {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, KeyValuePairs) {
  const CliArgs a = parse({"--lattice", "16", "--mass", "-0.2"});
  EXPECT_EQ(a.get_int("lattice", 0), 16);
  EXPECT_DOUBLE_EQ(a.get_double("mass", 0.0), -0.2);
}

TEST(Cli, EqualsForm) {
  const CliArgs a = parse({"--tol=1e-7", "--name=run1"});
  EXPECT_DOUBLE_EQ(a.get_double("tol", 0.0), 1e-7);
  EXPECT_EQ(a.get("name", ""), "run1");
}

TEST(Cli, BooleanFlags) {
  const CliArgs a = parse({"--verbose", "--fast", "false"});
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_FALSE(a.get_bool("fast", true));
  EXPECT_TRUE(a.get_bool("absent", true));
  EXPECT_FALSE(a.get_bool("absent", false));
}

TEST(Cli, Defaults) {
  const CliArgs a = parse({});
  EXPECT_EQ(a.get_int("n", 42), 42);
  EXPECT_EQ(a.get("s", "dflt"), "dflt");
  EXPECT_FALSE(a.has("n"));
}

TEST(Cli, Positional) {
  const CliArgs a = parse({"input.cfg", "--flag", "output.cfg"});
  // "--flag output.cfg" is a key-value pair; only input.cfg is positional.
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "input.cfg");
  EXPECT_EQ(a.get("flag", ""), "output.cfg");
}

TEST(Cli, BadBooleanThrows) {
  const CliArgs a = parse({"--opt", "maybe"});
  EXPECT_THROW((void)a.get_bool("opt", false), std::invalid_argument);
}

TEST(Log, LevelsGate) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_TRUE(log_enabled(LogLevel::Error));
  EXPECT_TRUE(log_enabled(LogLevel::Warn));
  EXPECT_FALSE(log_enabled(LogLevel::Info));
  EXPECT_FALSE(log_enabled(LogLevel::Debug));
  set_log_level(LogLevel::Debug);
  EXPECT_TRUE(log_enabled(LogLevel::Debug));
  set_log_level(old);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  const double t1 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(sw.seconds(), t1);
  sw.reset();
  EXPECT_LT(sw.seconds(), t1 + 1.0);
}

TEST(SectionTimer, AccumulatesByName) {
  SectionTimer timer;
  timer.add("dslash", 1.5);
  timer.add("blas", 0.5);
  timer.add("dslash", 0.5);
  EXPECT_DOUBLE_EQ(timer.total("dslash"), 2.0);
  EXPECT_DOUBLE_EQ(timer.total("blas"), 0.5);
  EXPECT_DOUBLE_EQ(timer.total("absent"), 0.0);
  EXPECT_EQ(timer.totals().size(), 2u);
  timer.clear();
  EXPECT_DOUBLE_EQ(timer.total("dslash"), 0.0);
}

TEST(SectionTimer, ScopeMeasures) {
  SectionTimer timer;
  {
    auto scope = timer.scope("work");
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  }
  EXPECT_GT(timer.total("work"), 0.0);
}

}  // namespace
}  // namespace lqcd
