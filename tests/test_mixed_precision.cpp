// Mixed-precision strategies: defect-correction BiCGstab and CG reach
// double-precision accuracy with single-precision inner work, and the
// staggered two-stage multi-shift strategy refines every shift.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "comm/wire.h"
#include "core/gcr_dd.h"
#include "core/mixed_bicgstab.h"
#include "core/staggered_multishift.h"
#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "solvers/mixed_cg.h"

namespace lqcd {
namespace {

TEST(MixedPrecision, BiCgStabReachesBeyondSingleAccuracy) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = weak_gauge(g, 141, 0.4);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b = gaussian_wilson_source(g, 142);

  MixedBiCgStabParams p;
  p.mass = 0.2;
  p.tol = 1e-10;  // beyond single precision's ~1e-7
  MixedBiCgStabWilsonSolver solver(u, &a, p);
  WilsonField<double> x(g);
  const SolverStats stats = solver.solve(x, b);
  EXPECT_TRUE(stats.converged);
  EXPECT_GE(stats.restarts, 2);  // needs multiple defect corrections

  WilsonCloverOperator<double> m(u, &a, p.mass);
  WilsonField<double> r(g);
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 1e-9);
}

TEST(MixedPrecision, MixedCgMatchesDoubleCg) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 143);
  const AsqtadLinks links = build_asqtad_links(u);
  StaggeredSchurOperator<double> op_d(links.fat, links.lng, 0.1, 0.0);
  const GaugeField<float> fat_f = convert_gauge<float>(links.fat);
  const GaugeField<float> lng_f = convert_gauge<float>(links.lng);
  StaggeredSchurOperator<float> op_f(fat_f, lng_f, 0.1, 0.0);

  StaggeredField<double> b = gaussian_staggered_source(g, 144);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    b.at(s) = ColorVector<double>{};
  }

  StaggeredField<double> x(g);
  set_zero(x);
  MixedCgParams p;
  p.tol = 1e-11;
  const SolverStats stats = mixed_cg_solve(
      op_d, op_f, x, b, p,
      [](const StaggeredField<double>& f) { return convert_field<float>(f); },
      [](const StaggeredField<float>& f) { return convert_field<double>(f); });
  EXPECT_TRUE(stats.converged);

  StaggeredField<double> r(g);
  op_d.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 1e-10);
}

TEST(MixedPrecision, StaggeredTwoStageStrategy) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 145);
  const AsqtadLinks links = build_asqtad_links(u);

  StaggeredMultishiftParams p;
  p.mass = 0.1;
  p.shifts = {0.0, 0.05, 0.2};
  p.tol_single = 1e-5;
  p.tol_final = 1e-10;
  StaggeredMultishiftSolver solver(links.fat, links.lng, p);

  StaggeredField<double> b = gaussian_staggered_source(g, 146);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    b.at(s) = ColorVector<double>{};
  }
  const StaggeredMultishiftResult result = solver.solve(b);
  ASSERT_EQ(result.solutions.size(), p.shifts.size());

  for (std::size_t i = 0; i < p.shifts.size(); ++i) {
    EXPECT_TRUE(result.refines[i].converged) << "shift " << p.shifts[i];
    StaggeredSchurOperator<double> op(links.fat, links.lng, p.mass,
                                      p.shifts[i]);
    StaggeredField<double> r(g);
    op.apply(r, result.solutions[i]);
    scale(-1.0, r);
    axpy(1.0, b, r);
    EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 1e-9) << "shift " << p.shifts[i];
  }

  // The warm start must make refinement cheap relative to the single stage.
  for (const auto& refine : result.refines) {
    EXPECT_LT(refine.inner_iterations, 3 * result.multishift.iterations + 50);
  }
}

TEST(MixedPrecision, GcrDdWithHalfGhostWireReachesOuterTolerance) {
  // The full mixed-precision stack with compressed ghosts: a double
  // precision system solved by the single-precision GCR-DD engine over a
  // partitioned cluster whose ghost faces travel in HALF precision
  // (LQCD_GHOST_PREC=half, comm/wire.h).
  //
  // What to gate on: NOT the iterate bits.  The half wire quantizes every
  // exchanged face (relative error ~1/32767 per site), so each operator
  // application — and with it the whole Krylov trajectory — differs from
  // the uncompressed run from the first iteration on.  What the
  // compression must NOT change is what the solver promises: the returned
  // x solves the original double-precision system to the outer tolerance.
  // We therefore gate on the final true residual, measured against the
  // exact (uncompressed, double) operator.  The 5e-5 bound is the same
  // slack the uncompressed GcrDd convergence test grants a 1e-5 single
  // precision inner target; the per-application quantization error (~3e-5
  // on face terms only, ~1/8 of the stencil) sits below that slack, so no
  // extra tolerance is needed for the compression.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = weak_gauge(g, 151, 0.4);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b = gaussian_wilson_source(g, 152);

  const char* prev = std::getenv("LQCD_GHOST_PREC");
  const std::string saved = prev != nullptr ? prev : "";
  setenv("LQCD_GHOST_PREC", "half", 1);
  init_ghost_prec_from_env();

  GcrDdParams p;
  p.mass = 0.2;
  p.tol = 1e-5;
  p.block_grid = {1, 1, 1, 2};
  p.rank_grid = {{1, 1, 1, 2}};  // partitioned: ghosts actually on the wire
  GcrDdWilsonSolver solver(u, &a, p);
  ASSERT_NE(solver.partitioned_operator(), nullptr);
  WilsonField<double> x(g);
  const SolverStats stats = solver.solve(x, b);

  if (prev != nullptr) {
    setenv("LQCD_GHOST_PREC", saved.c_str(), 1);
  } else {
    unsetenv("LQCD_GHOST_PREC");
  }
  init_ghost_prec_from_env();

  EXPECT_TRUE(stats.converged);
  WilsonCloverOperator<double> m(u, &a, p.mass);
  WilsonField<double> r(g);
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 5e-5);
}

TEST(MixedPrecision, ConversionRoundTripAccuracy) {
  const LatticeGeometry g({4, 4, 4, 4});
  const WilsonField<double> d = gaussian_wilson_source(g, 147);
  const WilsonField<float> f = convert_field<float>(d);
  const WilsonField<double> back = convert_field<double>(f);
  double max_err = 0;
  auto ds = d.sites();
  auto bs = back.sites();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    WilsonSpinor<double> diff = ds[i];
    diff -= bs[i];
    max_err = std::max(max_err, std::sqrt(norm2(diff) / norm2(ds[i])));
  }
  EXPECT_LT(max_err, 1e-6);  // single-precision rounding only
  EXPECT_GT(max_err, 0.0);   // but conversion genuinely happened
}

}  // namespace
}  // namespace lqcd
