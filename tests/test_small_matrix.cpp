#include "linalg/small_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace lqcd {
namespace {

DenseMatrix<double> random_matrix(int n, Rng& rng) {
  DenseMatrix<double> m(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      m(r, c) = std::complex<double>(rng.gaussian(), rng.gaussian());
    }
  }
  return m;
}

TEST(SmallMatrix, SolveRecoversKnownSolution) {
  Rng rng(1);
  for (int n : {1, 2, 6, 12, 24}) {
    const DenseMatrix<double> a = random_matrix(n, rng);
    std::vector<std::complex<double>> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = std::complex<double>(rng.gaussian(), rng.gaussian());
    const auto b = a.multiply(x);
    const auto x2 = LuFactorization<double>(a).solve(b);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(x2[static_cast<std::size_t>(i)] -
                           x[static_cast<std::size_t>(i)]),
                  0.0, 1e-9)
          << "n=" << n;
    }
  }
}

TEST(SmallMatrix, InverseTimesSelfIsIdentity) {
  Rng rng(2);
  const int n = 6;
  const DenseMatrix<double> a = random_matrix(n, rng);
  const DenseMatrix<double> inv = LuFactorization<double>(a).inverse();
  const DenseMatrix<double> p = a * inv;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      EXPECT_NEAR(std::abs(p(r, c) - (r == c ? 1.0 : 0.0)), 0.0, 1e-10);
    }
  }
}

TEST(SmallMatrix, SingularThrows) {
  DenseMatrix<double> a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW((void)LuFactorization<double>(a), std::runtime_error);
}

TEST(SmallMatrix, NonSquareThrows) {
  DenseMatrix<double> a(2, 3);
  EXPECT_THROW((void)LuFactorization<double>(a), std::invalid_argument);
}

TEST(SmallMatrix, PivotingHandlesZeroLeadingDiagonal) {
  DenseMatrix<double> a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = LuFactorization<double>(a).solve({{1.0, 0.0}, {2.0, 0.0}});
  EXPECT_NEAR(x[0].real(), 2.0, 1e-14);
  EXPECT_NEAR(x[1].real(), 1.0, 1e-14);
}

TEST(SmallMatrix, AdjointProperty) {
  Rng rng(3);
  const DenseMatrix<double> a = random_matrix(3, rng);
  const DenseMatrix<double> ad = a.adjoint();
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(ad(c, r), std::conj(a(r, c)));
    }
  }
}

TEST(SmallMatrix, HermitianSystemFloat) {
  Rng rng(4);
  const int n = 6;
  DenseMatrix<float> h(n, n);
  // Build A^dag A + I: Hermitian positive definite.
  DenseMatrix<float> a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a(r, c) = std::complex<float>(static_cast<float>(rng.gaussian()),
                                    static_cast<float>(rng.gaussian()));
    }
  }
  h = a.adjoint() * a;
  for (int i = 0; i < n; ++i) h(i, i) += 1.0f;
  std::vector<std::complex<float>> x(static_cast<std::size_t>(n),
                                     std::complex<float>(1.0f, -0.5f));
  const auto b = h.multiply(x);
  const auto x2 = LuFactorization<float>(h).solve(b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x2[static_cast<std::size_t>(i)] -
                         x[static_cast<std::size_t>(i)]),
                0.0f, 1e-3f);
  }
}

TEST(SmallMatrix, IdentityFactory) {
  const auto id = DenseMatrix<double>::identity(4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(id(r, c), std::complex<double>(r == c ? 1.0 : 0.0));
    }
  }
}

}  // namespace
}  // namespace lqcd
