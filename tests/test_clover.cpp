// Clover term: field strength, chirality blocking, Hermiticity, site
// algebra and inversion.
#include <gtest/gtest.h>

#include "fields/clover.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"

namespace lqcd {
namespace {

TEST(Clover, FieldStrengthAntiHermitian) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 81);
  for (std::int64_t s = 0; s < 32; ++s) {
    const Coord x = g.eo_coords(s);
    for (int mu = 0; mu < kNDim; ++mu) {
      for (int nu = mu + 1; nu < kNDim; ++nu) {
        const Matrix3<double> f = field_strength(u, x, mu, nu);
        ASSERT_LT(norm2(f + adj(f)), 1e-24);
      }
    }
  }
}

TEST(Clover, FieldStrengthVanishesOnFreeField) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = unit_gauge(g);
  const Matrix3<double> f = field_strength(u, {0, 0, 0, 0}, 0, 1);
  EXPECT_LT(norm2(f), 1e-28);
}

TEST(Clover, FieldStrengthAntisymmetricInPlane) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 82);
  const Coord x{1, 2, 3, 0};
  const Matrix3<double> f01 = field_strength(u, x, 0, 1);
  const Matrix3<double> f10 = field_strength(u, x, 1, 0);
  EXPECT_LT(norm2(f01 + f10), 1e-24);
}

TEST(Clover, SigmaHermitianAndChiralityBlocked) {
  for (int mu = 0; mu < kNDim; ++mu) {
    for (int nu = mu + 1; nu < kNDim; ++nu) {
      const DenseMatrix<double> s = sigma_munu(mu, nu);
      for (int r = 0; r < kNSpin; ++r) {
        for (int c = 0; c < kNSpin; ++c) {
          EXPECT_NEAR(std::abs(s(r, c) - std::conj(s(c, r))), 0.0, 1e-14);
          if (r / 2 != c / 2) {
            EXPECT_NEAR(std::abs(s(r, c)), 0.0, 1e-14);
          }
        }
      }
    }
  }
}

TEST(Clover, TermVanishesOnFreeField) {
  const LatticeGeometry g({4, 4, 4, 4});
  const CloverField<double> a = build_clover_field(unit_gauge(g), 1.0);
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    for (int b = 0; b < 2; ++b) {
      for (const auto& z : a.at(s).chi[static_cast<std::size_t>(b)].m) {
        ASSERT_NEAR(std::abs(z), 0.0, 1e-14);
      }
    }
  }
}

TEST(Clover, TermHermitianBlocks) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 83);
  const CloverField<double> a = build_clover_field(u, 1.2);
  for (std::int64_t s = 0; s < 32; ++s) {
    for (int b = 0; b < 2; ++b) {
      const auto& blk = a.at(s).chi[static_cast<std::size_t>(b)];
      for (int r = 0; r < 6; ++r) {
        for (int c = 0; c < 6; ++c) {
          ASSERT_NEAR(std::abs(blk(r, c) - std::conj(blk(c, r))), 0.0, 1e-13);
        }
      }
    }
  }
}

TEST(Clover, LinearInCsw) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 84);
  const CloverField<double> a1 = build_clover_field(u, 1.0);
  const CloverField<double> a2 = build_clover_field(u, 2.0);
  for (std::int64_t s = 0; s < 16; ++s) {
    for (int b = 0; b < 2; ++b) {
      for (std::size_t k = 0; k < 36; ++k) {
        const auto z1 = a1.at(s).chi[static_cast<std::size_t>(b)].m[k];
        const auto z2 = a2.at(s).chi[static_cast<std::size_t>(b)].m[k];
        ASSERT_NEAR(std::abs(z2 - 2.0 * z1), 0.0, 1e-13);
      }
    }
  }
}

TEST(Clover, ApplyMatchesDenseBlocks) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 85);
  const CloverField<double> a = build_clover_field(u, 0.9);
  Rng rng(86);
  WilsonSpinor<double> psi;
  for (int sp = 0; sp < kNSpin; ++sp) {
    for (int c = 0; c < kNColor; ++c) {
      psi[sp][c] = Cplx<double>(rng.gaussian(), rng.gaussian());
    }
  }
  const CloverSite<double>& cs = a.at(5);
  const WilsonSpinor<double> out = clover_apply(cs, psi);
  for (int b = 0; b < 2; ++b) {
    for (int r = 0; r < 6; ++r) {
      Cplx<double> expect{};
      for (int c = 0; c < 6; ++c) {
        expect += cs.chi[static_cast<std::size_t>(b)](r, c) *
                  psi[2 * b + c / 3][c % 3];
      }
      EXPECT_NEAR(std::abs(out[2 * b + r / 3][r % 3] - expect), 0.0, 1e-13);
    }
  }
}

TEST(Clover, AddDiagonalThenInvertIsInverse) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 87);
  const CloverField<double> a = build_clover_field(u, 1.0);
  Rng rng(88);
  for (std::int64_t s = 0; s < 8; ++s) {
    const CloverSite<double> d = clover_add_diagonal(a.at(s), 4.0 - 0.1);
    const CloverSite<double> inv = clover_invert(d);
    WilsonSpinor<double> psi;
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        psi[sp][c] = Cplx<double>(rng.gaussian(), rng.gaussian());
      }
    }
    const WilsonSpinor<double> round = clover_apply(inv, clover_apply(d, psi));
    ASSERT_LT(norm2(round - psi), 1e-20);
  }
}

TEST(Clover, GaugeCovariantSpectrum) {
  // The clover term transforms as A -> Omega A Omega^dag sitewise, so the
  // applied norm on a rotated spinor is invariant.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 89);
  const auto omega = random_gauge_rotation(g, 90);
  const GaugeField<double> v = gauge_transform(u, omega);
  const CloverField<double> au = build_clover_field(u, 1.0);
  const CloverField<double> av = build_clover_field(v, 1.0);
  for (std::int64_t s = 0; s < 16; ++s) {
    Rng rng(91 + static_cast<std::uint64_t>(s));
    WilsonSpinor<double> psi;
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        psi[sp][c] = Cplx<double>(rng.gaussian(), rng.gaussian());
      }
    }
    // psi' = Omega psi at this site.
    WilsonSpinor<double> psi_rot;
    for (int sp = 0; sp < kNSpin; ++sp) psi_rot[sp] = omega.at(s) * psi[sp];
    const WilsonSpinor<double> a_psi = clover_apply(au.at(s), psi);
    WilsonSpinor<double> a_psi_rot;
    for (int sp = 0; sp < kNSpin; ++sp) {
      a_psi_rot[sp] = omega.at(s) * a_psi[sp];
    }
    const WilsonSpinor<double> b_psi = clover_apply(av.at(s), psi_rot);
    ASSERT_LT(norm2(b_psi - a_psi_rot), 1e-18);
  }
}

}  // namespace
}  // namespace lqcd
