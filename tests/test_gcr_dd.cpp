// GCR-DD (Algorithm 1): convergence, the benefit of the Schwarz
// preconditioner, block-size dependence, and the half-precision emulation.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/virtual_cluster.h"
#include "core/gcr_dd.h"
#include "dirac/wilson_ops.h"
#include "fault/fault.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/heatbath.h"
#include "obs/metrics.h"

namespace lqcd {
namespace {

GaugeField<double> thermalized(const LatticeGeometry& g, std::uint64_t seed) {
  GaugeField<double> u = hot_gauge(g, seed);
  HeatbathParams hb;
  hb.beta = 5.9;
  thermalize(u, hb, 3);
  return u;
}

TEST(GcrDd, SolvesWilsonCloverToSinglePrecision) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 121);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b = gaussian_wilson_source(g, 122);

  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-5;
  p.block_grid = {1, 1, 1, 2};
  GcrDdWilsonSolver solver(u, &a, p);
  WilsonField<double> x(g);
  const SolverStats stats = solver.solve(x, b);
  EXPECT_TRUE(stats.converged);

  // Full-system double-precision residual must be near the single target.
  WilsonCloverOperator<double> m(u, &a, p.mass);
  WilsonField<double> r(g);
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 5e-5);
}

TEST(GcrDd, PreconditionerReducesOuterIterations) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 123);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b = gaussian_wilson_source(g, 124);

  GcrDdParams with;
  with.mass = 0.05;
  with.tol = 1e-5;
  with.block_grid = {1, 1, 1, 2};
  with.mr.steps = 8;
  GcrDdWilsonSolver s_with(u, &a, with);
  WilsonField<double> x1(g);
  const SolverStats stats_with = s_with.solve(x1, b);

  // Baseline: plain GCR (no preconditioner) on the same single-precision
  // Schur system.
  const GaugeField<float> u_f = convert_gauge<float>(u);
  const CloverField<float> a_f = convert_clover<float>(a);
  WilsonCloverSchurOperator<float> schur(u_f, &a_f, with.mass);
  WilsonField<float> b_f = convert_field<float>(b);
  WilsonField<float> b_hat(g);
  schur.prepare_source(b_hat, b_f);
  WilsonField<float> x2(g);
  set_zero(x2);
  GcrParams gp;
  gp.tol = with.tol;
  gp.kmax = with.kmax;
  gp.delta = with.delta;
  const SolverStats stats_without = gcr_solve(schur, x2, b_hat, nullptr, gp);

  EXPECT_TRUE(stats_with.converged);
  EXPECT_TRUE(stats_without.converged);
  EXPECT_LT(stats_with.iterations, stats_without.iterations);
}

TEST(GcrDd, MoreBlocksWeakenPreconditioner) {
  // Smaller Dirichlet blocks approximate the operator less well: the outer
  // iteration count must not decrease when the block grid refines.
  const LatticeGeometry g({4, 4, 8, 8});
  const GaugeField<double> u = thermalized(g, 125);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b = gaussian_wilson_source(g, 126);

  auto iterations_for = [&](std::array<int, 4> grid) {
    GcrDdParams p;
    p.mass = 0.05;
    p.tol = 1e-5;
    p.block_grid = grid;
    p.mr.steps = 8;
    GcrDdWilsonSolver solver(u, &a, p);
    WilsonField<double> x(g);
    const SolverStats stats = solver.solve(x, b);
    EXPECT_TRUE(stats.converged);
    return stats.iterations;
  };

  const int coarse = iterations_for({1, 1, 1, 2});
  const int fine = iterations_for({2, 2, 4, 4});
  EXPECT_LE(coarse, fine);
}

TEST(GcrDd, HalfEmulationStillConverges) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 127);
  const WilsonField<double> b = gaussian_wilson_source(g, 128);

  GcrDdParams half;
  half.mass = 0.1;
  half.tol = 1e-4;
  half.block_grid = {1, 1, 1, 2};
  half.half_krylov = true;
  half.half_preconditioner = true;
  GcrDdWilsonSolver s_half(u, nullptr, half);
  WilsonField<double> x(g);
  const SolverStats stats = s_half.solve(x, b);
  EXPECT_TRUE(stats.converged);

  WilsonCloverOperator<double> m(u, nullptr, half.mass);
  WilsonField<double> r(g);
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 5e-4);
}

TEST(GcrDd, SinglePrecisionKrylovNoWorseThanHalf) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 129);
  const WilsonField<double> b = gaussian_wilson_source(g, 130);

  auto run = [&](bool half_krylov) {
    GcrDdParams p;
    p.mass = 0.1;
    p.tol = 1e-5;
    p.block_grid = {1, 1, 1, 2};
    p.half_krylov = half_krylov;
    GcrDdWilsonSolver solver(u, nullptr, p);
    WilsonField<double> x(g);
    return solver.solve(x, b);
  };
  const SolverStats s_half = run(true);
  const SolverStats s_single = run(false);
  EXPECT_TRUE(s_half.converged);
  EXPECT_TRUE(s_single.converged);
  // Half storage may cost extra iterations but not an order of magnitude.
  EXPECT_LE(s_single.iterations, s_half.iterations + 2);
  EXPECT_LT(s_half.iterations, 4 * std::max(1, s_single.iterations));
}

TEST(GcrDd, CountsPreconditionerWork) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 131);
  const WilsonField<double> b = gaussian_wilson_source(g, 132);
  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-4;
  p.block_grid = {1, 1, 1, 2};
  p.mr.steps = 6;
  GcrDdWilsonSolver solver(u, nullptr, p);
  WilsonField<double> x(g);
  const SolverStats stats = solver.solve(x, b);
  EXPECT_TRUE(stats.converged);
  // inner_iterations tallies MR steps: 6 per outer Krylov step (plus any
  // restart-discarded work).
  EXPECT_GE(stats.inner_iterations, 6 * stats.iterations);
}

TEST(GcrDd, ReusedSolverReportsPerSolveInnerIterations) {
  // Regression: the Schwarz preconditioner's MR-step tally is cumulative
  // across applies, and solve() used to report it verbatim — so a reused
  // solver's second solve claimed roughly double the preconditioner work.
  // Identical back-to-back solves must report identical per-solve counts.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 137);
  const WilsonField<double> b = gaussian_wilson_source(g, 138);
  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-4;
  p.block_grid = {1, 1, 1, 2};
  p.mr.steps = 6;
  GcrDdWilsonSolver solver(u, nullptr, p);

  WilsonField<double> x1(g), x2(g);
  const SolverStats first = solver.solve(x1, b);
  const SolverStats second = solver.solve(x2, b);
  EXPECT_TRUE(first.converged);
  EXPECT_TRUE(second.converged);
  ASSERT_GT(first.inner_iterations, 0);
  // Same system, same zero initial guess: the trajectories are identical,
  // so so must be the reported preconditioner work.
  EXPECT_EQ(second.iterations, first.iterations);
  EXPECT_EQ(second.inner_iterations, first.inner_iterations);
}

TEST(GcrDd, PartitionedOuterOperatorConverges) {
  // rank_grid routes the outer Schur operator through the virtual-cluster
  // partitioned dslash; the solve must still converge to the same target.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 133);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> b = gaussian_wilson_source(g, 134);

  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-5;
  p.block_grid = {1, 1, 1, 2};
  p.rank_grid = {{1, 1, 2, 2}};
  GcrDdWilsonSolver solver(u, &a, p);
  EXPECT_NE(solver.partitioned_operator(), nullptr);
  WilsonField<double> x(g);
  const SolverStats stats = solver.solve(x, b);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(static_cast<int>(stats.residual_history.size()),
            stats.iterations);

  WilsonCloverOperator<double> m(u, &a, p.mass);
  WilsonField<double> r(g);
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 5e-5);
  // The cluster operator metered ghost traffic during the solve.
  EXPECT_GT(solver.partitioned_operator()->traffic().spinor.total_bytes(), 0u);
}

TEST(GcrDd, RollsBackAndConvergesAfterCorruptedExchange) {
  // Fault-recovery regression: one ghost message is bit-flipped mid-solve.
  // The exchange repairs it (checksum + resend from the retained copy), the
  // repair is metered as a comm retry, and GCR must observe it, roll back
  // to the last reliable update, and still converge to the same tolerance.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 139);
  const WilsonField<double> b = gaussian_wilson_source(g, 140);

  const RankMode prev = rank_mode();
  set_rank_mode(RankMode::Threads);
  clear_fault_plan();

  GcrDdParams p;
  p.mass = 0.1;
  p.tol = 1e-5;
  p.block_grid = {1, 1, 1, 2};
  p.rank_grid = {{1, 1, 1, 2}};
  // Full single precision: keeps the iterated residual close to the true
  // one so the post-rollback monotonicity check below is meaningful.
  p.half_krylov = false;
  p.half_preconditioner = false;
  GcrDdWilsonSolver solver(u, nullptr, p);

  // One-shot bit-flip a few exchanges in: each Schur matvec on this rank
  // grid posts 8 messages (2 ranks x 1 dim x 2 dirs x 2 hops), so ordinal
  // 20 lands inside an outer GCR iteration, past the initial residual.
  FaultSpec spec;
  spec.seed = 31;
  spec.once[static_cast<int>(FaultKind::BitFlip)] = 20;
  spec.max_retries = 4;
  set_fault_plan(spec);
  const std::uint64_t rollbacks_before =
      metric_counter("solver.rollbacks").value();
  const std::uint64_t retries_before = metric_counter("comm.retries").value();

  WilsonField<double> x(g);
  const SolverStats stats = solver.solve(x, b);
  clear_fault_plan();
  set_rank_mode(prev);

  EXPECT_TRUE(stats.converged);
  EXPECT_GE(stats.rollbacks, 1);
  ASSERT_FALSE(stats.rollback_iterations.empty());
  EXPECT_GE(metric_counter("solver.rollbacks").value(), rollbacks_before + 1);
  EXPECT_GE(metric_counter("comm.retries").value(), retries_before + 1);

  // Converges to the same tolerance as a fault-free solve.
  WilsonCloverOperator<double> m(u, nullptr, p.mass);
  WilsonField<double> r(g);
  m.apply(r, x);
  scale(-1.0, r);
  axpy(1.0, b, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 5e-5);

  // Monotone residual history after the rollback point: the rollback
  // re-anchored on the true residual, so from there the trajectory must
  // descend (5% slack absorbs single-precision re-anchoring at restarts).
  const std::size_t from =
      static_cast<std::size_t>(stats.rollback_iterations.front());
  ASSERT_LT(from, stats.residual_history.size());
  for (std::size_t i = from; i + 1 < stats.residual_history.size(); ++i) {
    EXPECT_LE(stats.residual_history[i + 1],
              stats.residual_history[i] * 1.05)
        << "iter " << i;
  }
}

TEST(GcrDd, ResidualHistoryIdenticalAcrossRankModes) {
  // The whole GCR-DD trajectory — every iterated-residual norm, the
  // iteration count, and the final residual — must be bitwise reproducible
  // between the sequential reference and the concurrent rank runtime.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = thermalized(g, 135);
  const WilsonField<double> b = gaussian_wilson_source(g, 136);

  auto run = [&](RankMode m) {
    const RankMode prev = rank_mode();
    set_rank_mode(m);
    GcrDdParams p;
    p.mass = 0.1;
    p.tol = 1e-5;
    p.block_grid = {1, 1, 1, 2};
    p.rank_grid = {{1, 1, 1, 2}};
    GcrDdWilsonSolver solver(u, nullptr, p);
    WilsonField<double> x(g);
    const SolverStats stats = solver.solve(x, b);
    set_rank_mode(prev);
    return stats;
  };
  const SolverStats seq = run(RankMode::Seq);
  const SolverStats thr = run(RankMode::Threads);

  EXPECT_TRUE(seq.converged);
  EXPECT_TRUE(thr.converged);
  EXPECT_EQ(seq.iterations, thr.iterations);
  EXPECT_EQ(seq.restarts, thr.restarts);
  EXPECT_EQ(seq.final_residual, thr.final_residual);
  ASSERT_EQ(seq.residual_history.size(), thr.residual_history.size());
  for (std::size_t i = 0; i < seq.residual_history.size(); ++i) {
    EXPECT_EQ(seq.residual_history[i], thr.residual_history[i]) << "iter " << i;
  }
}

}  // namespace
}  // namespace lqcd
