// The observability layer (src/obs): scoped-span tracing (nesting, thread
// and rank-track attribution, valid Chrome trace-event JSON, zero overhead
// when disabled, no numerical perturbation) and the process-global metrics
// registry (counter/gauge semantics, snapshot/reset, agreement with the
// legacy per-subsystem counters it subsumes).
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/counters.h"
#include "comm/virtual_cluster.h"
#include "core/gcr_dd.h"
#include "dirac/partitioned.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/heatbath.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lqcd {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser — just enough to validate the emitted trace-event
// files structurally (objects, arrays, strings with escapes, numbers).
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool has(const std::string& key) const { return obj.count(key) != 0; }
  const Json& at(const std::string& key) const { return obj.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at byte " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': literal("true"); return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null"); return Json{};
      default: return number();
    }
  }

  static Json make_bool(bool b) {
    Json v;
    v.kind = Json::Kind::Bool;
    v.b = b;
    return v;
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_++] != *p) {
        throw std::runtime_error("bad JSON literal");
      }
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      Json key = string_value();
      expect(':');
      v.obj.emplace(key.str, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    expect('"');
    Json v;
    v.kind = Json::Kind::String;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;  // structural validation only; keep a placeholder
            c = '?';
            break;
          default: throw std::runtime_error("bad escape");
        }
      }
      v.str.push_back(c);
    }
    expect('"');
    return v;
  }

  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad JSON number");
    Json v;
    v.kind = Json::Kind::Number;
    v.num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Every obs test starts from a clean, enabled (or deliberately disabled)
/// tracer and leaves it disabled so other suites in the binary see the
/// zero-overhead path.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(false);
    reset_trace();
  }
  void TearDown() override {
    set_trace_enabled(false);
    reset_trace();
  }
};

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpanNestingAndThreadAttribution) {
  set_trace_enabled(true);
  {
    ScopedSpan outer("obs.test.outer");
    { ScopedSpan inner("obs.test.inner"); }
  }
  std::thread([] { ScopedSpan other("obs.test.thread"); }).join();

  const std::vector<SpanEvent> spans = trace_events();
  const SpanEvent* outer = nullptr;
  const SpanEvent* inner = nullptr;
  const SpanEvent* other = nullptr;
  for (const SpanEvent& s : spans) {
    if (std::string(s.name) == "obs.test.outer") outer = &s;
    if (std::string(s.name) == "obs.test.inner") inner = &s;
    if (std::string(s.name) == "obs.test.thread") other = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(other, nullptr);

  // Nesting: depth counts enclosing spans on the same thread, and the
  // inner interval is contained in the outer one.
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_GE(inner->begin_us, outer->begin_us);
  EXPECT_LE(inner->begin_us + inner->dur_us, outer->begin_us + outer->dur_us);

  // Thread attribution: no rank task active, so both threads land on
  // distinct per-thread fallback tracks.
  EXPECT_GE(outer->track, kFallbackTrackBase);
  EXPECT_EQ(inner->track, outer->track);
  EXPECT_GE(other->track, kFallbackTrackBase);
  EXPECT_NE(other->track, outer->track);
}

TEST_F(ObsTest, RankTasksLandOnRankTracks) {
  for (RankMode m : {RankMode::Seq, RankMode::Threads}) {
    SCOPED_TRACE(rank_mode_name(m));
    const RankMode prev = rank_mode();
    set_rank_mode(m);
    reset_trace();
    set_trace_enabled(true);
    run_ranks(4, [](int) { ScopedSpan span("obs.test.rankwork"); });
    set_trace_enabled(false);
    set_rank_mode(prev);

    std::set<int> tracks;
    for (const SpanEvent& s : trace_events()) {
      if (std::string(s.name) == "obs.test.rankwork") tracks.insert(s.track);
    }
    // One track per virtual rank, named by rank id, in both rank modes.
    EXPECT_EQ(tracks, (std::set<int>{0, 1, 2, 3}));
  }
}

TEST_F(ObsTest, TraceJsonIsValidAndCompletelyLabelled) {
  set_trace_enabled(true);
  run_ranks(2, [](int) { ScopedSpan span("obs.test.json"); });
  set_trace_enabled(false);

  const Json root = JsonParser(trace_json()).parse();
  ASSERT_EQ(root.kind, Json::Kind::Object);
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::Array);
  ASSERT_FALSE(events.arr.empty());

  std::set<double> span_tids;
  std::set<double> named_tids;
  std::set<std::string> names;
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.kind, Json::Kind::Object);
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.at("ph").str;
    if (ph == "X") {
      // Complete event: the fields chrome://tracing requires.
      for (const char* key : {"pid", "tid", "name", "ts", "dur"}) {
        ASSERT_TRUE(e.has(key)) << "X event missing " << key;
      }
      EXPECT_GE(e.at("dur").num, 0.0);
      span_tids.insert(e.at("tid").num);
      names.insert(e.at("name").str);
    } else {
      ASSERT_EQ(ph, "M");
      ASSERT_EQ(e.at("name").str, "thread_name");
      ASSERT_TRUE(e.at("args").has("name"));
      named_tids.insert(e.at("tid").num);
    }
  }
  EXPECT_TRUE(names.count("obs.test.json"));
  EXPECT_TRUE(names.count("rank.task"));
  // Both rank tracks present, and every track that carries spans has a
  // thread_name metadata record labelling it.
  EXPECT_TRUE(span_tids.count(0.0));
  EXPECT_TRUE(span_tids.count(1.0));
  for (double tid : span_tids) {
    EXPECT_TRUE(named_tids.count(tid)) << "unlabelled track " << tid;
  }
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(trace_enabled());
  const std::size_t before = trace_event_count();
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span("obs.test.disabled");
  }
  std::thread([] { ScopedSpan span("obs.test.disabled.thread"); }).join();
  EXPECT_EQ(trace_event_count(), before);
  EXPECT_EQ(before, 0u);
}

TEST_F(ObsTest, SolverResultsBitwiseIdenticalWithTracing) {
  const LatticeGeometry g({4, 4, 4, 8});
  GaugeField<double> u = hot_gauge(g, 141);
  HeatbathParams hb;
  hb.beta = 5.9;
  thermalize(u, hb, 2);
  const WilsonField<double> b = gaussian_wilson_source(g, 142);

  auto run = [&](bool tracing) {
    set_trace_enabled(tracing);
    GcrDdParams p;
    p.mass = 0.1;
    p.tol = 1e-5;
    p.block_grid = {1, 1, 1, 2};
    GcrDdWilsonSolver solver(u, nullptr, p);
    auto x = std::make_unique<WilsonField<double>>(g);
    const SolverStats stats = solver.solve(*x, b);
    set_trace_enabled(false);
    return std::make_pair(std::move(x), stats);
  };
  auto [x_off, s_off] = run(false);
  auto [x_on, s_on] = run(true);

  // Spans only read the clock: the whole trajectory is bitwise unchanged.
  EXPECT_EQ(s_off.iterations, s_on.iterations);
  EXPECT_EQ(s_off.restarts, s_on.restarts);
  EXPECT_EQ(s_off.matvecs, s_on.matvecs);
  EXPECT_EQ(s_off.final_residual, s_on.final_residual);
  ASSERT_EQ(s_off.residual_history.size(), s_on.residual_history.size());
  for (std::size_t i = 0; i < s_off.residual_history.size(); ++i) {
    EXPECT_EQ(s_off.residual_history[i], s_on.residual_history[i]);
  }
  axpy(-1.0, *x_off, *x_on);
  EXPECT_EQ(norm2(*x_on), 0.0);
  EXPECT_GT(trace_event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, CounterGaugeAndKeyBasics) {
  EXPECT_EQ(metric_key("plain", {}), "plain");
  EXPECT_EQ(metric_key("comm.exchange.bytes", {{"mu", "2"}}),
            "comm.exchange.bytes{mu=2}");
  EXPECT_EQ(metric_key("a.b", {{"mu", "0"}, {"dir", "+"}}), "a.b{mu=0,dir=+}");

  Counter& c = metric_counter("obs.test.counter");
  Gauge& g = metric_gauge("obs.test.gauge");
  c.reset();
  g.reset();
  c.add();
  c.add(41);
  g.add(1.5);
  g.add(2.0);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);

  // Stable registration: the same key yields the same object.
  EXPECT_EQ(&metric_counter("obs.test.counter"), &c);
  EXPECT_EQ(&metric_gauge("obs.test.gauge"), &g);
  // A key keeps its kind.
  EXPECT_THROW(metric_gauge("obs.test.counter"), std::logic_error);
  EXPECT_THROW(metric_counter("obs.test.gauge"), std::logic_error);

  const MetricsSnapshot snap = metrics_snapshot();
  EXPECT_EQ(snap.counter("obs.test.counter"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauge("obs.test.gauge"), 3.5);
  EXPECT_EQ(snap.counter("obs.test.never-registered"), 0u);

  reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(metrics_snapshot().counter("obs.test.counter"), 0u);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  Counter& c = metric_counter("obs.test.concurrent");
  c.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ExchangeMetricsMatchLegacyCounters) {
  // The metrics registry mirrors every exchange through the same
  // account_exchange() funnel as the legacy global counters: after a
  // partitioned apply the two accountings must agree exactly.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 143);
  Partitioning part(g, {1, 1, 2, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, -0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 144);
  WilsonField<double> out(g);

  reset_metrics();
  reset_exchange_counters();
  // Threads mode takes the overlapped schedule: the metrics are fed from
  // concurrent rank tasks, same as production.
  const RankMode prev = rank_mode();
  set_rank_mode(RankMode::Threads);
  op.apply(out, in);
  set_rank_mode(prev);

  const ExchangeCounters legacy = exchange_counters_snapshot();
  const MetricsSnapshot snap = metrics_snapshot();
  ASSERT_GT(legacy.messages, 0u);
  for (int mu = 0; mu < kNDim; ++mu) {
    EXPECT_EQ(snap.counter(metric_key("comm.exchange.bytes",
                                      {{"mu", std::to_string(mu)}})),
              legacy.bytes_by_dim[static_cast<std::size_t>(mu)])
        << "mu " << mu;
  }
  EXPECT_EQ(snap.counter("comm.exchange.messages"), legacy.messages);
  EXPECT_EQ(snap.counter("comm.exchange.count"), legacy.exchanges);
  // The overlap phase gauges meter the same apply.
  EXPECT_EQ(snap.counter("dslash.overlap.rank_samples"),
            static_cast<std::uint64_t>(part.num_ranks()));
}

TEST(Metrics, HistogramBucketsAndPercentiles) {
  // Bucket math: power-of-two buckets from 1 ns, clamped at both ends.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0);
  EXPECT_EQ(Histogram::bucket_index(Histogram::kMin), 0);
  EXPECT_EQ(Histogram::bucket_index(3e-9), 1);
  EXPECT_EQ(Histogram::bucket_index(1e12), Histogram::kBuckets - 1);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower(0), Histogram::kMin);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower(3), 8.0 * Histogram::kMin);

  Histogram& h = metric_histogram("obs.test.hist");
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(metrics_snapshot().histogram("obs.test.hist").percentile(
                       0.5),
                   0.0);  // empty -> 0

  // All samples in one bucket: q=0 hits the bucket's lower edge exactly,
  // q=1 its upper edge (linear interpolation inside the bucket).
  for (int i = 0; i < 4; ++i) h.record(1.0);
  const int idx = Histogram::bucket_index(1.0);
  HistogramSnapshot snap = metrics_snapshot().histogram("obs.test.hist");
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 4.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 1.0);
  EXPECT_EQ(snap.buckets[static_cast<std::size_t>(idx)], 4u);
  EXPECT_DOUBLE_EQ(snap.percentile(0.0), Histogram::bucket_lower(idx));
  EXPECT_DOUBLE_EQ(snap.percentile(1.0), Histogram::bucket_lower(idx + 1));
  EXPECT_GT(snap.percentile(0.5), Histogram::bucket_lower(idx));
  EXPECT_LT(snap.percentile(0.5), Histogram::bucket_lower(idx + 1));

  // Bimodal body/tail: the median lands in the body bucket, the p99 in
  // the tail bucket — the property the serve latency report relies on.
  h.reset();
  for (int i = 0; i < 90; ++i) h.record(1e-6);
  for (int i = 0; i < 10; ++i) h.record(1.0);
  snap = metrics_snapshot().histogram("obs.test.hist");
  EXPECT_EQ(snap.count, 100u);
  const int body = Histogram::bucket_index(1e-6);
  const int tail = Histogram::bucket_index(1.0);
  EXPECT_GE(snap.percentile(0.50), Histogram::bucket_lower(body));
  EXPECT_LE(snap.percentile(0.50), Histogram::bucket_lower(body + 1));
  EXPECT_GE(snap.percentile(0.99), Histogram::bucket_lower(tail));
  EXPECT_LE(snap.percentile(0.99), Histogram::bucket_lower(tail + 1));
  EXPECT_LT(snap.percentile(0.50), snap.percentile(0.95));

  reset_metrics();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Metrics, HistogramKeyKeepsItsKind) {
  Counter& c = metric_counter("obs.test.hkind.counter");
  c.add();
  EXPECT_THROW(metric_histogram("obs.test.hkind.counter"), std::logic_error);
  Histogram& h = metric_histogram("obs.test.hkind.hist");
  h.record(1.0);
  EXPECT_THROW(metric_counter("obs.test.hkind.hist"), std::logic_error);
  EXPECT_THROW(metric_gauge("obs.test.hkind.hist"), std::logic_error);
  // Stable registration: the same key yields the same object.
  EXPECT_EQ(&metric_histogram("obs.test.hkind.hist"), &h);
}

TEST(Metrics, ConcurrentHistogramRecordsAreLossless) {
  Histogram& h = metric_histogram("obs.test.hist.concurrent");
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(0.5);
    });
  }
  for (auto& t : ts) t.join();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), kTotal);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 * static_cast<double>(kTotal));
  EXPECT_EQ(h.bucket(Histogram::bucket_index(0.5)), kTotal);
}

}  // namespace
}  // namespace lqcd
