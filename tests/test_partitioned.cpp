// The multi-dimensionally partitioned operators (the paper's contribution):
// for every partitioning grid the result must equal the single-domain
// operator exactly, the communications-off mode must equal the
// block-Dirichlet operator, and the traffic meters must match the analytic
// face-byte formulas used by the performance model.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "comm/virtual_cluster.h"
#include "dirac/even_odd.h"
#include "dirac/partitioned.h"
#include "dirac/partitioned_schur.h"
#include "dirac/staggered.h"
#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "perfmodel/stencil.h"
#include "util/parallel_for.h"

namespace lqcd {
namespace {

using Grid = std::array<int, 4>;

class PartitionedWilsonTest : public ::testing::TestWithParam<Grid> {};

TEST_P(PartitionedWilsonTest, MatchesSingleDomain) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 51);
  const CloverField<double> a = build_clover_field(u, 1.1);
  const double mass = -0.1;
  Partitioning part(g, GetParam());

  WilsonCloverOperator<double> ref_op(u, &a, mass);
  PartitionedWilsonClover<double> par_op(part, u, &a, mass);

  const WilsonField<double> in = gaussian_wilson_source(g, 52);
  WilsonField<double> expect(g), got(g);
  ref_op.apply(expect, in);
  par_op.apply(got, in);
  axpy(-1.0, expect, got);
  EXPECT_LT(norm2(got), 1e-20 * norm2(expect));
}

TEST_P(PartitionedWilsonTest, CommsOffEqualsBlockDirichlet) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 53);
  const double mass = 0.05;
  Partitioning part(g, GetParam());
  BlockMask mask(g, GetParam());

  WilsonCloverOperator<double> masked_op(u, nullptr, mass, &mask);
  PartitionedWilsonClover<double> cut_op(part, u, nullptr, mass,
                                         /*comms=*/false);

  const WilsonField<double> in = gaussian_wilson_source(g, 54);
  WilsonField<double> expect(g), got(g);
  masked_op.apply(expect, in);
  cut_op.apply(got, in);
  axpy(-1.0, expect, got);
  EXPECT_LT(norm2(got), 1e-20 * norm2(expect));
}

TEST_P(PartitionedWilsonTest, TrafficMatchesAnalyticModel) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 55);
  const double mass = 0.0;
  Partitioning part(g, GetParam());
  PartitionedWilsonClover<double> op(part, u, nullptr, mass);

  const WilsonField<double> in = gaussian_wilson_source(g, 56);
  WilsonField<double> out(g);
  op.apply(out, in);
  op.apply(out, in);

  const auto& traffic = op.traffic();
  EXPECT_EQ(traffic.applications, 2);
  for (int mu = 0; mu < kNDim; ++mu) {
    // Metered bytes per dimension over 2 applications and all ranks:
    // 2 apps x ranks x 2 directions x face_message_bytes.
    const double expect = 2.0 * part.num_ranks() * 2.0 *
                          face_message_bytes(part, StencilKind::Wilson,
                                             Precision::Double, mu);
    EXPECT_DOUBLE_EQ(
        static_cast<double>(traffic.spinor.bytes_by_dim[static_cast<std::size_t>(mu)]),
        expect)
        << "mu=" << mu;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, PartitionedWilsonTest,
                         ::testing::Values(Grid{1, 1, 1, 1}, Grid{1, 1, 1, 2},
                                           Grid{1, 1, 2, 2}, Grid{1, 2, 1, 2},
                                           Grid{2, 1, 1, 1}, Grid{2, 2, 2, 2},
                                           Grid{1, 1, 1, 4}, Grid{2, 2, 2, 4}));

class PartitionedStaggeredTest : public ::testing::TestWithParam<Grid> {};

TEST_P(PartitionedStaggeredTest, MatchesSingleDomain) {
  const LatticeGeometry g({4, 4, 8, 8});
  const GaugeField<double> u = hot_gauge(g, 61);
  const AsqtadLinks links = build_asqtad_links(u);
  const double mass = 0.07;
  Partitioning part(g, GetParam());

  StaggeredOperator<double> ref_op(links.fat, links.lng, mass);
  PartitionedStaggered<double> par_op(part, links.fat, links.lng, mass);

  const StaggeredField<double> in = gaussian_staggered_source(g, 62);
  StaggeredField<double> expect(g), got(g);
  ref_op.apply(expect, in);
  par_op.apply(got, in);
  axpy(-1.0, expect, got);
  EXPECT_LT(norm2(got), 1e-20 * norm2(expect));
}

TEST_P(PartitionedStaggeredTest, TrafficMatchesAnalyticModel) {
  const LatticeGeometry g({4, 4, 8, 8});
  const GaugeField<double> u = hot_gauge(g, 63);
  const AsqtadLinks links = build_asqtad_links(u);
  Partitioning part(g, GetParam());
  PartitionedStaggered<double> op(part, links.fat, links.lng, 0.05);

  const StaggeredField<double> in = gaussian_staggered_source(g, 64);
  StaggeredField<double> out(g);
  op.apply(out, in);

  const auto& traffic = op.traffic();
  for (int mu = 0; mu < kNDim; ++mu) {
    const double expect =
        part.num_ranks() * 2.0 *
        face_message_bytes(part, StencilKind::ImprovedStaggered,
                           Precision::Double, mu);
    EXPECT_DOUBLE_EQ(
        static_cast<double>(traffic.spinor.bytes_by_dim[static_cast<std::size_t>(mu)]),
        expect)
        << "mu=" << mu;
  }
}

TEST_P(PartitionedStaggeredTest, CommsOffEqualsBlockDirichlet) {
  const LatticeGeometry g({4, 4, 8, 8});
  const GaugeField<double> u = hot_gauge(g, 65);
  const AsqtadLinks links = build_asqtad_links(u);
  Partitioning part(g, GetParam());
  BlockMask mask(g, GetParam());

  StaggeredField<double> in = gaussian_staggered_source(g, 66);
  StaggeredField<double> expect(g), got(g);
  staggered_hop(expect, links.fat, links.lng, in, std::nullopt, &mask);
  // Dirichlet hop through the partitioned machinery: mass 0 gives D/2.
  PartitionedStaggered<double> cut_op(part, links.fat, links.lng, 0.0,
                                      /*comms=*/false);
  cut_op.apply(got, in);
  scale(2.0, got);  // M = m + D/2 with m = 0
  axpy(-1.0, expect, got);
  EXPECT_LT(norm2(got), 1e-20 * norm2(expect));
}

INSTANTIATE_TEST_SUITE_P(Grids, PartitionedStaggeredTest,
                         ::testing::Values(Grid{1, 1, 1, 1}, Grid{1, 1, 1, 2},
                                           Grid{1, 1, 2, 2}, Grid{1, 1, 2, 1},
                                           Grid{1, 1, 1, 2}, Grid{1, 1, 2, 2}));

class PartitionedSchurTest : public ::testing::TestWithParam<Grid> {};

TEST_P(PartitionedSchurTest, MatchesSingleDomainSchur) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 81);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const double mass = 0.1;
  Partitioning part(g, GetParam());

  WilsonCloverSchurOperator<double> ref(u, &a, mass);
  PartitionedWilsonCloverSchur<double> par(part, u, &a, mass);

  WilsonField<double> in = gaussian_wilson_source(g, 82);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    in.at(s) = WilsonSpinor<double>{};
  }
  WilsonField<double> expect(g), got(g);
  ref.apply(expect, in);
  par.apply(got, in);
  axpy(-1.0, expect, got);
  EXPECT_LT(norm2(got), 1e-18 * norm2(expect));
}

TEST_P(PartitionedSchurTest, PrepareAndReconstructMatchSingleDomain) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 83);
  const double mass = 0.2;
  Partitioning part(g, GetParam());

  WilsonCloverSchurOperator<double> ref(u, nullptr, mass);
  PartitionedWilsonCloverSchur<double> par(part, u, nullptr, mass);

  const WilsonField<double> b = gaussian_wilson_source(g, 84);
  WilsonField<double> bh_ref(g), bh_par(g);
  ref.prepare_source(bh_ref, b);
  par.prepare_source(bh_par, b);
  WilsonField<double> diff = bh_par;
  axpy(-1.0, bh_ref, diff);
  EXPECT_LT(norm2(diff), 1e-18 * norm2(bh_ref));

  // Reconstruction from the same even-site solution candidate.
  WilsonField<double> x_ref = gaussian_wilson_source(g, 85);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    x_ref.at(s) = WilsonSpinor<double>{};
  }
  WilsonField<double> x_par = x_ref;
  ref.reconstruct_solution(x_ref, b);
  par.reconstruct_solution(x_par, b);
  diff = x_par;
  axpy(-1.0, x_ref, diff);
  EXPECT_LT(norm2(diff), 1e-18 * norm2(x_ref));
}

INSTANTIATE_TEST_SUITE_P(Grids, PartitionedSchurTest,
                         ::testing::Values(Grid{1, 1, 1, 2}, Grid{1, 1, 2, 2},
                                           Grid{2, 2, 2, 2}, Grid{1, 2, 1, 4}));

TEST(PartitionedSchur, ParityExchangeHalvesTraffic) {
  // The Schur operator exchanges only source-parity sites: per apply, the
  // two hops each move half a face exchange -> together exactly one full
  // exchange (same bytes as one unpreconditioned apply).
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 86);
  Partitioning part(g, {1, 1, 2, 2});

  PartitionedWilsonClover<double> full(part, u, nullptr, 0.1);
  PartitionedWilsonCloverSchur<double> schur(part, u, nullptr, 0.1);

  WilsonField<double> in = gaussian_wilson_source(g, 87);
  WilsonField<double> out(g);
  full.apply(out, in);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    in.at(s) = WilsonSpinor<double>{};
  }
  schur.apply(out, in);

  EXPECT_EQ(schur.traffic().spinor.total_bytes(),
            full.traffic().spinor.total_bytes());
  // But across twice as many messages (two parity rounds).
  EXPECT_EQ(schur.traffic().spinor.messages,
            2 * full.traffic().spinor.messages);
}

/// Runs the rank grids {1,1,1,1} .. {2,2,1,2} (ranks 1,2,4,8) under both
/// execution modes and both worker counts, asserting bitwise identity —
/// the equivalence guarantee of comm/virtual_cluster.h.
class RankModeDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_rank_mode(RankMode::Threads);
    set_worker_count(1);
  }

  static std::vector<Grid> rank_grids() {
    return {{1, 1, 1, 1}, {1, 1, 1, 2}, {1, 1, 2, 2}, {2, 2, 1, 2}};
  }

  static std::vector<int> worker_counts() {
    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    if (hw == 1) return {1, 4};  // still exercise the pool on 1-core hosts
    return {1, hw};
  }

  template <typename Site>
  static void expect_bitwise_equal(const LatticeField<Site>& a,
                                   const LatticeField<Site>& b,
                                   const char* what) {
    auto sa = a.sites();
    auto sb = b.sites();
    ASSERT_EQ(sa.size(), sb.size());
    EXPECT_EQ(std::memcmp(sa.data(), sb.data(), sa.size_bytes()), 0) << what;
  }
};

TEST_F(RankModeDeterminismTest, WilsonApplyBitwiseAcrossModesAndWorkers) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 91);
  const CloverField<double> a = build_clover_field(u, 1.2);
  const WilsonField<double> in = gaussian_wilson_source(g, 92);

  for (const Grid& grid : rank_grids()) {
    Partitioning part(g, grid);
    PartitionedWilsonClover<double> op(part, u, &a, -0.15);

    set_rank_mode(RankMode::Seq);
    set_worker_count(1);
    WilsonField<double> ref(g);
    op.apply(ref, in);
    WilsonField<double> ref_hop(g);
    op.apply_hop(ref_hop, in, Parity::Even);

    for (RankMode m : {RankMode::Seq, RankMode::Threads}) {
      for (int w : worker_counts()) {
        set_rank_mode(m);
        set_worker_count(w);
        WilsonField<double> got(g);
        op.apply(got, in);
        expect_bitwise_equal(ref, got, "wilson apply");
        WilsonField<double> got_hop(g);
        op.apply_hop(got_hop, in, Parity::Even);
        expect_bitwise_equal(ref_hop, got_hop, "wilson apply_hop");
      }
    }
  }
}

TEST_F(RankModeDeterminismTest, StaggeredApplyBitwiseAcrossModesAndWorkers) {
  // Larger lattice: the asqtad stencil reaches 3 sites, so partitioned
  // local extents must stay >= 4.
  const LatticeGeometry g({4, 8, 8, 8});
  const GaugeField<double> u = hot_gauge(g, 93);
  const AsqtadLinks links = build_asqtad_links(u);
  const StaggeredField<double> in = gaussian_staggered_source(g, 94);

  const std::vector<Grid> grids{
      {1, 1, 1, 1}, {1, 1, 1, 2}, {1, 1, 2, 2}, {1, 2, 2, 2}};
  for (const Grid& grid : grids) {
    Partitioning part(g, grid);
    PartitionedStaggered<double> op(part, links.fat, links.lng, 0.03);

    set_rank_mode(RankMode::Seq);
    set_worker_count(1);
    StaggeredField<double> ref(g);
    op.apply(ref, in);

    for (RankMode m : {RankMode::Seq, RankMode::Threads}) {
      for (int w : worker_counts()) {
        set_rank_mode(m);
        set_worker_count(w);
        StaggeredField<double> got(g);
        op.apply(got, in);
        expect_bitwise_equal(ref, got, "staggered apply");
      }
    }
  }
}

TEST_F(RankModeDeterminismTest, ThreadsModeReportsOverlapPhases) {
  // In the executed-overlap path every rank samples its post / interior /
  // wait / exterior phases; the efficiency metric must be well-defined.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 95);
  Partitioning part(g, {1, 1, 2, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, 0.1);
  const WilsonField<double> in = gaussian_wilson_source(g, 96);
  WilsonField<double> out(g);

  set_rank_mode(RankMode::Threads);
  op.reset_overlap();
  op.apply(out, in);
  const OverlapStats& ov = op.overlap();
  EXPECT_EQ(ov.rank_samples, part.num_ranks());
  EXPECT_GT(ov.interior_s, 0.0);
  EXPECT_GE(ov.overlap_efficiency(), 0.0);
  EXPECT_LE(ov.overlap_efficiency(), 1.0);

  // The sequential path does not sample overlap phases.
  set_rank_mode(RankMode::Seq);
  op.reset_overlap();
  op.apply(out, in);
  EXPECT_EQ(op.overlap().rank_samples, 0);
}

TEST_F(RankModeDeterminismTest, ReconApplyBitwiseAcrossModesAndWorkers) {
  // Link reconstruction in the partitioned hot path must keep the virtual
  // cluster's equivalence guarantee: seq == threads, any worker count,
  // bitwise — decompression is pure per-site arithmetic.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 97);
  const CloverField<double> a = build_clover_field(u, 1.0);
  const WilsonField<double> in = gaussian_wilson_source(g, 98);

  for (const Grid& grid : {Grid{1, 1, 1, 2}, Grid{2, 2, 2, 2}}) {
    Partitioning part(g, grid);
    PartitionedWilsonClover<double> op(part, u, &a, -0.1, /*comms=*/true,
                                       Reconstruct::Twelve);
    ASSERT_EQ(op.recon(), Reconstruct::Twelve);

    set_rank_mode(RankMode::Seq);
    set_worker_count(1);
    WilsonField<double> ref(g);
    op.apply(ref, in);

    for (RankMode m : {RankMode::Seq, RankMode::Threads}) {
      for (int w : worker_counts()) {
        set_rank_mode(m);
        set_worker_count(w);
        WilsonField<double> got(g);
        op.apply(got, in);
        expect_bitwise_equal(ref, got, "recon-12 partitioned apply");
      }
    }
  }
}

TEST(PartitionedRecon, MatchesSingleDomainWithinCodecAccuracy) {
  // Compressed local link body + full ghost links must reproduce the
  // single-domain operator to the codec's round-trip error.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 99);
  const CloverField<double> a = build_clover_field(u, 1.1);
  const double mass = -0.1;
  const WilsonField<double> in = gaussian_wilson_source(g, 100);

  WilsonCloverOperator<double> ref_op(u, &a, mass);
  WilsonField<double> expect(g);
  ref_op.apply(expect, in);

  const struct {
    Reconstruct r;
    double tol;
  } cases[] = {{Reconstruct::Twelve, 1e-22}, {Reconstruct::Eight, 1e-16}};
  for (const auto& c : cases) {
    Partitioning part(g, {1, 1, 2, 2});
    PartitionedWilsonClover<double> par_op(part, u, &a, mass, /*comms=*/true,
                                           c.r);
    WilsonField<double> got(g);
    par_op.apply(got, in);
    axpy(-1.0, expect, got);
    EXPECT_LT(norm2(got), c.tol * norm2(expect)) << to_string(c.r);
  }
}

TEST(Partitioned, GaugeGhostBytesCountedOnce) {
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 71);
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, 0.0);
  const auto gauge_bytes = op.traffic().gauge.total_bytes();
  EXPECT_GT(gauge_bytes, 0u);
  const WilsonField<double> in = gaussian_wilson_source(g, 72);
  WilsonField<double> out(g);
  op.apply(out, in);
  op.apply(out, in);
  EXPECT_EQ(op.traffic().gauge.total_bytes(), gauge_bytes);
}

}  // namespace
}  // namespace lqcd
