// Parameterized randomized sweeps: the optimized operator kernels against
// the dense assemblies across many random gauge configurations, masses and
// lattice shapes — each parameter combination is an independent chance to
// expose a convention slip.
#include <gtest/gtest.h>

#include <random>

#include "comm/domain_map.h"
#include "comm/exchange.h"
#include "comm/virtual_cluster.h"
#include "dirac/dense_reference.h"
#include "dirac/staggered.h"
#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"

namespace lqcd {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::array<int, 4> dims;
  double mass;
  double csw;
};

class WilsonFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(WilsonFuzz, OperatorMatchesDense) {
  const FuzzCase c = GetParam();
  const LatticeGeometry g(c.dims);
  const GaugeField<double> u = hot_gauge(g, c.seed);
  std::optional<CloverField<double>> clover;
  if (c.csw != 0.0) clover = build_clover_field(u, c.csw);
  const WilsonField<double> in = gaussian_wilson_source(g, c.seed + 1);

  WilsonCloverOperator<double> m(u, clover ? &*clover : nullptr, c.mass);
  WilsonField<double> out(g);
  m.apply(out, in);

  const DenseMatrix<double> md =
      dense_wilson_clover(u, clover ? &*clover : nullptr, c.mass);
  WilsonField<double> expect(g);
  unflatten(md.multiply(flatten(in)), expect);
  axpy(-1.0, expect, out);
  ASSERT_LT(norm2(out), 1e-18 * norm2(expect));
}

TEST_P(WilsonFuzz, ProjectionTrickMatchesReference) {
  const FuzzCase c = GetParam();
  const LatticeGeometry g(c.dims);
  const GaugeField<double> u = hot_gauge(g, c.seed + 2);
  const WilsonField<double> in = gaussian_wilson_source(g, c.seed + 3);
  WilsonField<double> fast(g), ref(g);
  wilson_hop(fast, u, in);
  wilson_hop_reference(ref, u, in);
  axpy(-1.0, ref, fast);
  ASSERT_LT(norm2(fast), 1e-20 * norm2(ref));
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, WilsonFuzz,
    ::testing::Values(FuzzCase{11, {2, 2, 2, 4}, -0.3, 0.0},
                      FuzzCase{12, {2, 2, 2, 4}, 0.0, 1.0},
                      FuzzCase{13, {4, 2, 2, 2}, 0.7, 2.3},
                      FuzzCase{14, {2, 4, 2, 2}, -0.05, 0.5},
                      FuzzCase{15, {2, 2, 4, 2}, 0.2, 1.7},
                      FuzzCase{16, {2, 2, 2, 6}, 1.5, 0.0},
                      FuzzCase{17, {4, 2, 2, 4}, -0.8, 1.0},
                      FuzzCase{18, {2, 2, 2, 4}, 0.33, 3.0}));

class StaggeredFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(StaggeredFuzz, OperatorMatchesDense) {
  const FuzzCase c = GetParam();
  const LatticeGeometry g(c.dims);
  const GaugeField<double> u = hot_gauge(g, c.seed);
  const AsqtadLinks links = build_asqtad_links(u);
  const StaggeredField<double> in = gaussian_staggered_source(g, c.seed + 1);

  StaggeredOperator<double> m(links.fat, links.lng, c.mass);
  StaggeredField<double> out(g);
  m.apply(out, in);

  const DenseMatrix<double> md =
      dense_staggered(links.fat, links.lng, c.mass);
  StaggeredField<double> expect(g);
  unflatten(md.multiply(flatten(in)), expect);
  axpy(-1.0, expect, out);
  ASSERT_LT(norm2(out), 1e-18 * norm2(expect));
}

TEST_P(StaggeredFuzz, SchurConsistentWithNormalEquations) {
  // (M^dag M) on an even source via the Schur operator must match the
  // dense normal equations restricted to even sites.
  const FuzzCase c = GetParam();
  const LatticeGeometry g(c.dims);
  const GaugeField<double> u = hot_gauge(g, c.seed + 4);
  const AsqtadLinks links = build_asqtad_links(u);
  StaggeredField<double> in = gaussian_staggered_source(g, c.seed + 5);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    in.at(s) = ColorVector<double>{};
  }
  StaggeredSchurOperator<double> schur(links.fat, links.lng, c.mass, 0.0);
  StaggeredField<double> out(g);
  schur.apply(out, in);

  const DenseMatrix<double> md = dense_staggered(links.fat, links.lng, c.mass);
  // M^dag (M in) as two mat-vecs (avoids the cubic matrix product).
  StaggeredField<double> expect(g);
  unflatten(md.adjoint().multiply(md.multiply(flatten(in))), expect);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    expect.at(s) = ColorVector<double>{};
  }
  axpy(-1.0, expect, out);
  ASSERT_LT(norm2(out), 1e-16 * norm2(expect));
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, StaggeredFuzz,
    ::testing::Values(FuzzCase{21, {4, 4, 4, 4}, 0.02, 0},
                      FuzzCase{22, {4, 4, 4, 4}, 0.5, 0},
                      FuzzCase{23, {4, 4, 4, 8}, 0.1, 0},
                      FuzzCase{24, {4, 4, 4, 4}, 2.0, 0},
                      FuzzCase{25, {4, 4, 4, 4}, 0.25, 0}));

class ExchangeParityFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExchangeParityFuzz, ParityRestrictedGhostsMatchBruteForce) {
  // Property sweep: random rank grids x random source parities, checked
  // against the brute-force global-neighbour lookup.  Entries of the
  // restricted parity carry the global field value; the holes stay value-
  // initialized (the parity-restricted stencil never reads them); the byte
  // meters price exactly half a full exchange.
  std::mt19937_64 rng(GetParam());
  const LatticeGeometry g({4, 4, 4, 8});
  const StaggeredField<double> global =
      gaussian_staggered_source(g, rng());
  auto pick_extent = [&](int dim_len) {
    // Divisors keeping the local extent even.
    std::vector<int> choices{1};
    for (int e = 2; e <= dim_len / 2; ++e) {
      if (dim_len % e == 0 && (dim_len / e) % 2 == 0) choices.push_back(e);
    }
    return choices[rng() % choices.size()];
  };

  for (int trial = 0; trial < 6; ++trial) {
    std::array<int, 4> grid;
    for (int mu = 0; mu < kNDim; ++mu) grid[static_cast<std::size_t>(mu)] =
        pick_extent(g.dim(mu));
    const Parity parity = (rng() % 2 == 0) ? Parity::Even : Parity::Odd;
    const RankMode mode = (rng() % 2 == 0) ? RankMode::Seq : RankMode::Threads;
    const RankMode prev_mode = rank_mode();
    set_rank_mode(mode);

    Partitioning part(g, grid);
    NeighborTable nt(part.local(), part.partitioned_dims(), 1);
    DomainMap map(part);
    std::vector<StaggeredField<double>> locals;
    map.scatter(global, locals);
    std::vector<GhostZones<ColorVector<double>>> ghosts(
        static_cast<std::size_t>(part.num_ranks()),
        GhostZones<ColorVector<double>>(nt));
    ExchangeCounters counters;
    exchange_ghosts<IdentityPacker<ColorVector<double>>>(
        part, nt, locals, ghosts, &counters, parity);
    set_rank_mode(prev_mode);

    const int want_eo = parity == Parity::Even ? 0 : 1;
    for (int r = 0; r < part.num_ranks(); ++r) {
      for (std::int64_t s = 0; s < part.local().volume(); ++s) {
        const Coord lx = part.local().eo_coords(s);
        const Coord gx = part.global_coord(r, lx);
        for (int mu = 0; mu < kNDim; ++mu) {
          for (int d : {+1, -1}) {
            const auto ref = nt.neighbor(s, mu, d, 1);
            if (ref.local()) continue;
            const Coord gn = g.shifted(gx, mu, d);
            const ColorVector<double>& got =
                ghosts[static_cast<std::size_t>(r)].at(ref.zone, ref.index);
            const ColorVector<double> expect =
                LatticeGeometry::parity(gn) == want_eo ? global.at(gn)
                                                       : ColorVector<double>{};
            ASSERT_EQ(norm2(got - expect), 0.0)
                << "grid " << grid[0] << grid[1] << grid[2] << grid[3]
                << " rank " << r << " mu " << mu << " d " << d;
          }
        }
      }
    }

    // Exactly half the full-exchange payload travels (even local extents:
    // each face slice is half restricted-parity sites).
    for (int mu = 0; mu < kNDim; ++mu) {
      std::uint64_t expect = 0;
      if (part.partitioned(mu)) {
        expect = static_cast<std::uint64_t>(part.num_ranks()) *
                 static_cast<std::uint64_t>(nt.ghost_depth()) *
                 static_cast<std::uint64_t>(nt.face_volume(mu)) *
                 sizeof(ColorVector<double>);
      }
      ASSERT_EQ(counters.bytes_by_dim[static_cast<std::size_t>(mu)], expect)
          << "mu=" << mu;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, ExchangeParityFuzz,
                         ::testing::Values(0xA0, 0xA1, 0xA2, 0xA3));

}  // namespace
}  // namespace lqcd
