// Improved staggered (asqtad) operator: dense cross-check, anti-Hermitian
// derivative, parity decoupling of M^dag M.
#include <gtest/gtest.h>

#include "dirac/dense_reference.h"
#include "dirac/staggered.h"
#include "fields/blas.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"

namespace lqcd {
namespace {

struct Fixture {
  LatticeGeometry g{{4, 4, 4, 4}};
  GaugeField<double> u = hot_gauge(g, 21);
  AsqtadLinks links = build_asqtad_links(u);
};

TEST(Staggered, OperatorMatchesDenseMatrix) {
  Fixture f;
  const double mass = 0.08;
  const StaggeredField<double> in = gaussian_staggered_source(f.g, 22);
  StaggeredOperator<double> m(f.links.fat, f.links.lng, mass);
  StaggeredField<double> out(f.g);
  m.apply(out, in);

  const DenseMatrix<double> md = dense_staggered(f.links.fat, f.links.lng, mass);
  const auto dense_out = md.multiply(flatten(in));
  StaggeredField<double> expect(f.g);
  unflatten(dense_out, expect);
  axpy(-1.0, expect, out);
  EXPECT_LT(norm2(out), 1e-20 * norm2(expect));
}

TEST(Staggered, DerivativeAntiHermitian) {
  // <a, D b> = -conj(<b, D a>) with D = 2 (M - m).
  Fixture f;
  StaggeredOperator<double> m(f.links.fat, f.links.lng, 0.0);  // pure D/2
  const StaggeredField<double> a = gaussian_staggered_source(f.g, 23);
  const StaggeredField<double> b = gaussian_staggered_source(f.g, 24);
  StaggeredField<double> da(f.g), db(f.g);
  m.apply(da, a);
  m.apply(db, b);
  const auto lhs = dot(a, db);
  const auto rhs = -std::conj(dot(b, da));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * std::abs(lhs));
}

TEST(Staggered, EigenvaluesPureImaginaryShiftedByMass) {
  // For anti-Hermitian D, |M x|^2 = m^2 |x|^2 + |D x / 2|^2.
  Fixture f;
  const double mass = 0.1;
  StaggeredOperator<double> m(f.links.fat, f.links.lng, mass);
  StaggeredOperator<double> d_half(f.links.fat, f.links.lng, 0.0);
  const StaggeredField<double> x = gaussian_staggered_source(f.g, 25);
  StaggeredField<double> mx(f.g), dx(f.g);
  m.apply(mx, x);
  d_half.apply(dx, x);
  EXPECT_NEAR(norm2(mx), mass * mass * norm2(x) + norm2(dx),
              1e-8 * norm2(mx));
}

TEST(Staggered, HopFlipsParity) {
  Fixture f;
  StaggeredField<double> in(f.g);
  set_zero(in);
  // Even-site source.
  in.at(static_cast<std::int64_t>(0))[0] = 1.0;
  StaggeredField<double> out(f.g);
  staggered_hop(out, f.links.fat, f.links.lng, in);
  for (std::int64_t s = 0; s < f.g.half_volume(); ++s) {
    ASSERT_EQ(norm2(out.at(s)), 0.0) << "even site touched";
  }
}

TEST(Staggered, SchurOperatorMatchesDenseSchur) {
  // (M^dag M)_ee from the dense matrix == StaggeredSchurOperator.
  Fixture f;
  const double mass = 0.07;
  const double sigma = 0.02;
  StaggeredSchurOperator<double> schur(f.links.fat, f.links.lng, mass, sigma);

  StaggeredField<double> in = gaussian_staggered_source(f.g, 26);
  // Zero the odd part (operator convention).
  for (std::int64_t s = f.g.half_volume(); s < f.g.volume(); ++s) {
    in.at(s) = ColorVector<double>{};
  }
  StaggeredField<double> out(f.g);
  schur.apply(out, in);

  const DenseMatrix<double> md = dense_staggered(f.links.fat, f.links.lng, mass);
  const DenseMatrix<double> mdagm = md.adjoint() * md;
  auto flat = flatten(in);
  auto dense_out = mdagm.multiply(flat);
  // Add sigma and restrict to even sites.
  StaggeredField<double> expect(f.g);
  unflatten(dense_out, expect);
  for (std::int64_t s = 0; s < f.g.half_volume(); ++s) {
    ColorVector<double> v = in.at(s);
    v *= sigma;
    expect.at(s) += v;
  }
  for (std::int64_t s = f.g.half_volume(); s < f.g.volume(); ++s) {
    expect.at(s) = ColorVector<double>{};
  }
  axpy(-1.0, expect, out);
  EXPECT_LT(norm2(out), 1e-18 * norm2(expect));
}

TEST(Staggered, SchurHermitianPositiveDefinite) {
  Fixture f;
  StaggeredSchurOperator<double> schur(f.links.fat, f.links.lng, 0.05, 0.0);
  StaggeredField<double> a = gaussian_staggered_source(f.g, 27);
  StaggeredField<double> b = gaussian_staggered_source(f.g, 28);
  for (std::int64_t s = f.g.half_volume(); s < f.g.volume(); ++s) {
    a.at(s) = ColorVector<double>{};
    b.at(s) = ColorVector<double>{};
  }
  StaggeredField<double> sa(f.g), sb(f.g);
  schur.apply(sa, a);
  schur.apply(sb, b);
  const auto ab = dot(a, sb);
  const auto ba = dot(b, sa);
  EXPECT_NEAR(std::abs(ab - std::conj(ba)), 0.0, 1e-9 * std::abs(ab));
  EXPECT_GT(dot(a, sa).real(), 0.0);
}

TEST(Staggered, ShiftActsAsConstant) {
  Fixture f;
  StaggeredSchurOperator<double> base(f.links.fat, f.links.lng, 0.05, 0.0);
  StaggeredSchurOperator<double> shifted(f.links.fat, f.links.lng, 0.05, 0.3);
  StaggeredField<double> in = gaussian_staggered_source(f.g, 29);
  for (std::int64_t s = f.g.half_volume(); s < f.g.volume(); ++s) {
    in.at(s) = ColorVector<double>{};
  }
  StaggeredField<double> a(f.g), b(f.g);
  base.apply(a, in);
  shifted.apply(b, in);
  axpy(0.3, in, a);
  axpy(-1.0, a, b);
  EXPECT_LT(norm2(b), 1e-20 * norm2(a));
}

TEST(Staggered, GaugeCovariance) {
  Fixture f;
  const auto omega = random_gauge_rotation(f.g, 30);
  const GaugeField<double> v = gauge_transform(f.u, omega);
  const AsqtadLinks links_v = build_asqtad_links(v);
  const StaggeredField<double> in = gaussian_staggered_source(f.g, 31);

  StaggeredOperator<double> mu_op(f.links.fat, f.links.lng, 0.1);
  StaggeredOperator<double> mv_op(links_v.fat, links_v.lng, 0.1);

  StaggeredField<double> lhs(f.g);
  mv_op.apply(lhs, gauge_transform(in, omega));
  StaggeredField<double> mu_in(f.g);
  mu_op.apply(mu_in, in);
  const StaggeredField<double> rhs = gauge_transform(mu_in, omega);
  axpy(-1.0, rhs, lhs);
  EXPECT_LT(norm2(lhs), 1e-18 * norm2(rhs));
}

TEST(Staggered, DirichletCutKeepsBlockSupport) {
  LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 32);
  const AsqtadLinks links = build_asqtad_links(u);
  BlockMask mask(g, {1, 1, 1, 2});
  StaggeredField<double> in(g);
  set_zero(in);
  in.at(Coord{0, 0, 0, 1})[0] = 1.0;
  StaggeredField<double> out(g);
  staggered_hop(out, links.fat, links.lng, in, std::nullopt, &mask);
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    if (mask.block_of_site(s) != 0) {
      ASSERT_EQ(norm2(out.at(s)), 0.0);
    }
  }
}

}  // namespace
}  // namespace lqcd
