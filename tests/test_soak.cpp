// Anomaly-detector unit tests with synthetic metric streams (exact trigger
// positions, clean nominal passes, baseline regressions) plus a bounded
// end-to-end soak-harness smoke run (soak/runner.h).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "soak/anomaly.h"
#include "soak/runner.h"

namespace lqcd {
namespace {

using soak::Anomaly;
using soak::AnomalyDetector;
using soak::AnomalyKind;
using soak::AnomalyThresholds;
using soak::BaselineCheck;
using soak::RollingWindow;

// ---------------------------------------------------------------------------
// RollingWindow.
// ---------------------------------------------------------------------------

TEST(RollingWindow, ExactPercentilesOverWindow) {
  RollingWindow w(5);
  EXPECT_EQ(w.percentile(0.95), 0.0);  // empty
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) w.push(v);
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.percentile(0.0), 1.0);
  EXPECT_EQ(w.percentile(0.5), 3.0);   // nearest-rank median of {1,1,3,4,5}
  EXPECT_EQ(w.percentile(1.0), 5.0);
  // Pushing evicts the oldest sample (the 3.0).
  w.push(9.0);
  EXPECT_EQ(w.percentile(1.0), 9.0);
  EXPECT_EQ(w.percentile(0.0), 1.0);
}

// ---------------------------------------------------------------------------
// Rolling p95 spike detection: exact trigger sample, edge-triggered re-arm.
// ---------------------------------------------------------------------------

TEST(AnomalyDetector, LatencySpikeTriggersAtExactSample) {
  AnomalyThresholds t;
  t.window = 8;
  t.latency_p95_limit_s = 1.0;
  AnomalyDetector det(t);
  // 20 nominal samples: window fills at sample 7, p95 stays at 0.1.
  for (int i = 0; i < 20; ++i) det.record_latency(0.1);
  EXPECT_TRUE(det.report().ok());
  // Sample 20 is the injected spike: with nearest-rank p95 over an
  // 8-sample window, one 10 s outlier lifts the p95 over the 1 s ceiling
  // immediately — the finding must carry exactly this ordinal.
  det.record_latency(10.0);
  ASSERT_EQ(det.report().anomalies.size(), 1u);
  EXPECT_EQ(det.report().anomalies[0].kind, AnomalyKind::LatencySpike);
  EXPECT_EQ(det.report().anomalies[0].at, 20);
  EXPECT_GT(det.report().anomalies[0].observed, 1.0);
  // Edge-triggered: staying over the ceiling adds no further findings...
  for (int i = 0; i < 4; ++i) det.record_latency(10.0);
  EXPECT_EQ(det.report().anomalies.size(), 1u);
  // ...until the tail drains under the ceiling and a fresh spike re-trips.
  for (int i = 0; i < 8; ++i) det.record_latency(0.1);
  det.record_latency(10.0);
  ASSERT_EQ(det.report().anomalies.size(), 2u);
  EXPECT_EQ(det.report().anomalies[1].at, 33);
}

TEST(AnomalyDetector, QueueDepthSpikeTriggersAtExactSample) {
  AnomalyThresholds t;
  t.window = 4;
  t.queue_depth_p95_limit = 10.0;
  AnomalyDetector det(t);
  for (int i = 0; i < 6; ++i) det.record_queue_depth(2.0);
  det.record_queue_depth(50.0);  // sample 6
  ASSERT_EQ(det.report().anomalies.size(), 1u);
  EXPECT_EQ(det.report().anomalies[0].kind, AnomalyKind::QueueDepthSpike);
  EXPECT_EQ(det.report().anomalies[0].at, 6);
}

TEST(AnomalyDetector, NoSpikeBeforeWindowFills) {
  AnomalyThresholds t;
  t.window = 16;
  t.latency_p95_limit_s = 1.0;
  AnomalyDetector det(t);
  // Over-ceiling samples while the window is still filling are withheld:
  // a tail estimate over 3 samples is noise, not a finding.
  for (int i = 0; i < 15; ++i) det.record_latency(5.0);
  EXPECT_TRUE(det.report().ok());
  det.record_latency(5.0);  // sample 15 completes the window
  ASSERT_EQ(det.report().anomalies.size(), 1u);
  EXPECT_EQ(det.report().anomalies[0].at, 15);
}

// ---------------------------------------------------------------------------
// Residual-trajectory checks: exact trigger iteration.
// ---------------------------------------------------------------------------

TEST(AnomalyDetector, ResidualStallTriggersAtExactIteration) {
  AnomalyThresholds t;
  t.stall_window = 5;
  t.stall_factor = 0.9;
  AnomalyDetector det(t);
  // Flat trajectory: the first iteration that can see a full stall window
  // is i == stall_window, and 1.0 > 0.9 * 1.0 there.
  det.record_residual_history(std::vector<double>(12, 1.0));
  ASSERT_EQ(det.report().anomalies.size(), 1u);
  EXPECT_EQ(det.report().anomalies[0].kind, AnomalyKind::ResidualStall);
  EXPECT_EQ(det.report().anomalies[0].at, 5);
  EXPECT_EQ(det.report().solves_checked, 1u);
}

TEST(AnomalyDetector, ConvergingHistoryPassesClean) {
  AnomalyThresholds t;
  t.stall_window = 5;
  t.stall_factor = 0.9;
  t.divergence_factor = 1e3;
  AnomalyDetector det(t);
  std::vector<double> hist;
  double r = 1.0;
  for (int i = 0; i < 40; ++i) {
    hist.push_back(r);
    r *= 0.8;  // decays faster than the stall criterion asks
  }
  det.record_residual_history(hist);
  EXPECT_TRUE(det.report().ok());
}

TEST(AnomalyDetector, DivergenceTriggersAtExactIteration) {
  AnomalyThresholds t;
  t.divergence_factor = 1e3;
  t.stall_window = 0;  // isolate the divergence check
  AnomalyDetector det(t);
  det.record_residual_history({1.0, 10.0, 500.0, 2000.0, 3000.0});
  ASSERT_EQ(det.report().anomalies.size(), 1u);
  EXPECT_EQ(det.report().anomalies[0].kind, AnomalyKind::Divergence);
  EXPECT_EQ(det.report().anomalies[0].at, 3);  // first sample past 1e3 * r0
}

TEST(AnomalyDetector, StallAndDivergenceReportedOncePerSolve) {
  AnomalyThresholds t;
  t.stall_window = 2;
  t.stall_factor = 0.9;
  t.divergence_factor = 10.0;
  AnomalyDetector det(t);
  det.record_residual_history({1.0, 20.0, 30.0, 40.0, 50.0, 60.0});
  std::size_t stalls = 0, divergences = 0;
  for (const Anomaly& a : det.report().anomalies) {
    stalls += a.kind == AnomalyKind::ResidualStall ? 1u : 0u;
    divergences += a.kind == AnomalyKind::Divergence ? 1u : 0u;
  }
  EXPECT_EQ(stalls, 1u);
  EXPECT_EQ(divergences, 1u);
}

// ---------------------------------------------------------------------------
// Baseline regression.
// ---------------------------------------------------------------------------

TEST(AnomalyDetector, BaselineRegressionBothDirections) {
  AnomalyThresholds t;
  t.baseline_rel_tol = 0.5;
  AnomalyDetector det(t);
  const std::map<std::string, double> baseline = {
      {"request_latency_s.p95", 2.0}, {"throughput", 10.0}};
  det.check_baselines(
      baseline,
      {
          {"request_latency_s.p95", 2.9, true},   // within 2.0 * 1.5: pass
          {"request_latency_s.p95", 3.1, true},   // over: regression
          {"throughput", 7.0, false},             // within 10 / 1.5: pass
          {"throughput", 6.0, false},             // under: regression
      });
  ASSERT_EQ(det.report().anomalies.size(), 2u);
  for (const Anomaly& a : det.report().anomalies) {
    EXPECT_EQ(a.kind, AnomalyKind::BaselineRegression);
  }
  EXPECT_EQ(det.report().anomalies[0].metric, "request_latency_s.p95");
  EXPECT_EQ(det.report().anomalies[0].observed, 3.1);
  EXPECT_EQ(det.report().anomalies[1].metric, "throughput");
  EXPECT_EQ(det.report().baseline_checks, 4u);
}

TEST(AnomalyDetector, MissingBaselineMetricIsAGateFailure) {
  // The baseline *exists* but cannot answer a queried key (renamed
  // benchmark, or a non-positive value the relative comparison cannot
  // use): that must fail the gate, not silently pass — the regression this
  // fixes let renames disable the baseline check unnoticed.
  AnomalyDetector det;
  const std::map<std::string, double> baseline = {
      {"present", 10.0}, {"nonpositive", 0.0}};
  det.check_baselines(baseline, {
                                    {"present", 10.0, false},     // gated, ok
                                    {"absent.metric", 5.0, true},  // missing
                                    {"nonpositive", 5.0, true},    // unusable
                                });
  ASSERT_EQ(det.report().anomalies.size(), 2u);
  EXPECT_EQ(det.report().anomalies[0].kind, AnomalyKind::BaselineMissing);
  EXPECT_EQ(det.report().anomalies[0].metric, "absent.metric");
  EXPECT_EQ(det.report().anomalies[1].kind, AnomalyKind::BaselineMissing);
  EXPECT_EQ(det.report().anomalies[1].metric, "nonpositive");
  EXPECT_EQ(det.report().baseline_checks, 3u);
  EXPECT_FALSE(det.report().ok());
  EXPECT_NE(det.report().to_string().find("baseline-missing"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON flattener (baseline ingestion).
// ---------------------------------------------------------------------------

TEST(JsonFlattener, DottedPathsAndNamedArrays) {
  const std::string json = R"({
    "bench": "bench_serve",
    "request_latency_s": {"p50": 1.0, "p95": 2.5},
    "flags": {"scaled": false, "pinned": true},
    "loads": [0.1, 0.25],
    "benchmarks": [
      {"name": "BM_WilsonHop", "real_time": 0.17, "Mflops": 2265.0},
      {"name": "BM_Other", "real_time": 0.5}
    ]
  })";
  const auto flat = soak::flatten_json_numbers(json);
  EXPECT_EQ(flat.at("request_latency_s.p50"), 1.0);
  EXPECT_EQ(flat.at("request_latency_s.p95"), 2.5);
  EXPECT_EQ(flat.at("flags.scaled"), 0.0);
  EXPECT_EQ(flat.at("flags.pinned"), 1.0);
  EXPECT_EQ(flat.at("loads.0"), 0.1);
  EXPECT_EQ(flat.at("loads.1"), 0.25);
  EXPECT_EQ(flat.at("benchmarks.BM_WilsonHop.Mflops"), 2265.0);
  EXPECT_EQ(flat.at("benchmarks.BM_Other.real_time"), 0.5);
  EXPECT_EQ(flat.count("bench"), 0u);  // string leaves skipped
}

TEST(JsonFlattener, CommittedBaselinesParse) {
  // The committed BENCH files must stay ingestible; ctest runs from the
  // build tree, so resolve them relative to the source dir when provided.
  const char* src = std::getenv("LQCD_SOURCE_DIR");
  const std::string root = src != nullptr ? std::string(src) + "/" : "";
  for (const char* name : {"BENCH_serve.json", "BENCH_dslash.json"}) {
    std::FILE* f = std::fopen((root + name).c_str(), "rb");
    if (f == nullptr) GTEST_SKIP() << name << " not reachable from cwd";
    std::fclose(f);
    const auto flat = soak::flatten_json_file(root + name);
    EXPECT_FALSE(flat.empty()) << name;
  }
}

TEST(JsonFlattener, MalformedJsonThrows) {
  EXPECT_THROW((void)soak::flatten_json_numbers("{\"a\": }"),
               std::runtime_error);
  EXPECT_THROW((void)soak::flatten_json_numbers("{\"a\": 1} trailing"),
               std::runtime_error);
  EXPECT_THROW((void)soak::flatten_json_file("no/such/file.json"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Bounded end-to-end soak run: stream + kill/restore + gating all green.
// ---------------------------------------------------------------------------

TEST(SoakRunner, BoundedRunPassesWithKillRestore) {
  soak::SoakConfig cfg;
  cfg.dims = {4, 4, 4, 8};
  cfg.seed = 3;
  cfg.solver.mass = 0.1;
  cfg.solver.tol = 1e-5;
  cfg.solver.block_grid = {1, 1, 1, 2};
  cfg.max_batch = 4;
  cfg.rhs_per_request = 2;
  cfg.requests_per_wave = 1;
  cfg.stop.max_solves = 2;
  cfg.kill_restore_cycles = 1;
  cfg.checkpoint_path = "test_soak_smoke.ckpt";
  cfg.thresholds.latency_p95_limit_s = 300.0;  // generous: smoke, not perf
  cfg.thresholds.queue_depth_p95_limit = 1e6;
  // A baseline *file* that does not exist is "no baseline yet": the runner
  // warns and skips those checks, and the run still passes (a metric
  // missing from an existing file would instead be a gate failure).
  cfg.baseline_serve = "no/such/dir/BENCH_serve.json";
  cfg.baseline_dslash = "no/such/dir/BENCH_dslash.json";

  const soak::SoakOutcome out = soak::run_soak(cfg);
  EXPECT_TRUE(out.passed) << out.describe();
  EXPECT_EQ(out.stop_reason, "solve-count");
  EXPECT_GE(out.solves, 2u);
  EXPECT_EQ(out.cycles_run, 1u);
  EXPECT_TRUE(out.report.ok()) << out.report.to_string();
  std::remove(cfg.checkpoint_path.c_str());
}

TEST(SoakRunner, DivergenceStopConditionFires) {
  // A synthetic diverging trajectory through the detector also exercises
  // the runner's stop plumbing indirectly; here we assert the detector
  // side the runner consults (stop_on_divergence scans for this kind).
  AnomalyThresholds t;
  t.divergence_factor = 2.0;
  t.stall_window = 0;
  AnomalyDetector det(t);
  det.record_residual_history({1.0, 3.0});
  bool diverged = false;
  for (const Anomaly& a : det.report().anomalies) {
    diverged |= a.kind == AnomalyKind::Divergence;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace lqcd
