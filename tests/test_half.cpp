#include "linalg/half.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <limits>

#include "fields/packed_half.h"
#include "fields/precision.h"
#include "linalg/su3.h"
#include "util/rng.h"

namespace lqcd {
namespace {

TEST(Half, QuantizeRoundTripBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float y = dequantize_fixed(quantize_fixed(x, 1.0f), 1.0f);
    EXPECT_NEAR(x, y, 1.0f / kHalfScale);
  }
}

TEST(Half, QuantizeSaturates) {
  EXPECT_EQ(quantize_fixed(2.0f, 1.0f), 32767);
  EXPECT_EQ(quantize_fixed(-2.0f, 1.0f), -32767);
}

TEST(Half, SiteCodecErrorScalesWithNorm) {
  Rng rng(2);
  for (double scale : {1e-6, 1.0, 1e6}) {
    std::array<float, 24> site{}, decoded{};
    std::array<std::int16_t, 24> enc{};
    for (auto& v : site) {
      v = static_cast<float>(scale * rng.gaussian());
    }
    const float norm = encode_site_half(site, enc);
    decode_site_half(enc, norm, decoded);
    for (std::size_t i = 0; i < site.size(); ++i) {
      EXPECT_NEAR(site[i], decoded[i], half_error_bound(norm))
          << "scale=" << scale;
    }
  }
}

TEST(Half, ZeroSiteExact) {
  std::array<float, 6> site{}, decoded{1, 1, 1, 1, 1, 1};
  std::array<std::int16_t, 6> enc{};
  const float norm = encode_site_half(site, enc);
  decode_site_half(enc, norm, decoded);
  for (float v : decoded) EXPECT_EQ(v, 0.0f);
}

TEST(Half, RoundTripIdempotent) {
  // Quantizing an already-quantized site must be exact.
  Rng rng(3);
  std::array<float, 24> site{};
  for (auto& v : site) v = static_cast<float>(rng.gaussian());
  roundtrip_site_half(site);
  std::array<float, 24> again = site;
  roundtrip_site_half(again);
  for (std::size_t i = 0; i < site.size(); ++i) EXPECT_EQ(site[i], again[i]);
}

TEST(Half, QuantizeNonFiniteIsDeterministic) {
  // A NaN reaching the clamps collapses to the upper clamp (std::min/max
  // return their first argument on an unordered compare) — never the
  // float->int16 UB cast of an unclamped value.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(quantize_fixed(nan, 1.0f), 32767);
  EXPECT_EQ(quantize_fixed(inf, 1.0f), 32767);
  EXPECT_EQ(quantize_fixed(-inf, 1.0f), -32767);
}

TEST(Half, SanitizeClampsAndFlushes) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(sanitize_half_component(std::numeric_limits<float>::quiet_NaN()),
            0.0f);
  EXPECT_EQ(sanitize_half_component(inf), std::numeric_limits<float>::max());
  EXPECT_EQ(sanitize_half_component(-inf),
            -std::numeric_limits<float>::max());
  // Subnormals flush to (signed) zero; normals pass through untouched.
  EXPECT_EQ(sanitize_half_component(std::numeric_limits<float>::denorm_min()),
            0.0f);
  EXPECT_TRUE(
      std::signbit(sanitize_half_component(-std::numeric_limits<float>::denorm_min())));
  EXPECT_EQ(sanitize_half_component(0.25f), 0.25f);
  EXPECT_EQ(sanitize_half_component(-std::numeric_limits<float>::min()),
            -std::numeric_limits<float>::min());
}

TEST(Half, NonFiniteSiteEncodesIdenticallyOnEveryPath) {
  // The regression this guards: a NaN/Inf/denormal component must decode
  // to the same bit pattern whichever entry point encoded it — the
  // spanwise codec (encode/decode), the in-place round trip, and the
  // branch-free inline twin the mixed-precision solvers run.
  std::array<float, 24> site{};
  Rng rng(7);
  for (auto& v : site) v = static_cast<float>(rng.gaussian());
  site[0] = std::numeric_limits<float>::quiet_NaN();
  site[5] = std::numeric_limits<float>::infinity();
  site[11] = -std::numeric_limits<float>::infinity();
  site[17] = std::numeric_limits<float>::denorm_min();
  site[23] = -1e-41f;  // subnormal

  std::array<float, 24> decoded{};
  std::array<std::int16_t, 24> enc{};
  const float norm = encode_site_half(site, enc);
  decode_site_half(enc, norm, decoded);

  std::array<float, 24> via_roundtrip = site;
  roundtrip_site_half(via_roundtrip);

  std::array<float, 24> via_inline = site;
  roundtrip_site_half_n<24>(via_inline.data());

  for (std::size_t i = 0; i < site.size(); ++i) {
    EXPECT_FALSE(std::isnan(decoded[i])) << i;
    EXPECT_EQ(std::memcmp(&decoded[i], &via_roundtrip[i], sizeof(float)), 0)
        << i;
    EXPECT_EQ(std::memcmp(&decoded[i], &via_inline[i], sizeof(float)), 0)
        << i;
  }
  // The NaN collapsed to zero, not to a norm-scaled garbage value.  (The
  // Inf slots are the site's norm, FLT_MAX after the clamp; their decode
  // q * (norm / kHalfScale) may legitimately round back to +-Inf — what
  // the codec guarantees for them is the same bits on every path, asserted
  // above.)
  EXPECT_EQ(decoded[0], 0.0f);
}

TEST(Half, PackedFieldMatchesEmulationOnNonFiniteSpinor) {
  // Same contract at field level: the live-parity/packed path and the
  // full-field emulation agree bitwise even when the spinor carries
  // non-finite and denormal components.
  LatticeGeometry g({4, 4, 4, 4});
  WilsonField<float> f(g);
  Rng rng(8);
  for (auto& s : f.sites()) {
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        s[sp][c] = Cplx<float>(static_cast<float>(rng.gaussian()),
                               static_cast<float>(rng.gaussian()));
      }
    }
  }
  f.at(0)[0][0] = Cplx<float>(std::numeric_limits<float>::quiet_NaN(), 1.0f);
  f.at(1)[1][2] = Cplx<float>(std::numeric_limits<float>::infinity(),
                              -std::numeric_limits<float>::infinity());
  f.at(2)[3][1] = Cplx<float>(1e-41f, -std::numeric_limits<float>::denorm_min());

  WilsonField<float> emulated = f;
  half_roundtrip(emulated);

  PackedHalfWilson packed(g);
  packed.pack(f);
  WilsonField<float> unpacked(g);
  packed.unpack(unpacked);

  EXPECT_EQ(std::memcmp(emulated.sites().data(), unpacked.sites().data(),
                        emulated.sites().size_bytes()),
            0);

  // The parity-restricted round trip writes the same bits on its half.
  WilsonField<float> by_parity = f;
  half_roundtrip(by_parity, Parity::Even);
  half_roundtrip(by_parity, Parity::Odd);
  EXPECT_EQ(std::memcmp(emulated.sites().data(), by_parity.sites().data(),
                        emulated.sites().size_bytes()),
            0);
}

TEST(Half, PackedFieldMatchesEmulation) {
  // The int16 container and the in-place round trip must agree bitwise.
  LatticeGeometry g({4, 4, 4, 4});
  WilsonField<float> f(g);
  Rng rng(4);
  for (auto& s : f.sites()) {
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        s[sp][c] = Cplx<float>(static_cast<float>(rng.gaussian()),
                               static_cast<float>(rng.gaussian()));
      }
    }
  }
  WilsonField<float> emulated = f;
  half_roundtrip(emulated);

  PackedHalfWilson packed(g);
  packed.pack(f);
  WilsonField<float> unpacked(g);
  packed.unpack(unpacked);

  auto a = emulated.sites();
  auto b = unpacked.sites();
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        EXPECT_EQ(a[i][sp][c], b[i][sp][c]);
      }
    }
  }
}

TEST(Half, PackedFieldFootprint) {
  LatticeGeometry g({4, 4, 4, 4});
  PackedHalfWilson packed(g);
  // 24 int16 + 1 float norm per site.
  EXPECT_EQ(packed.storage_bytes(),
            static_cast<std::size_t>(g.volume()) * (24 * 2 + 4));
  PackedHalfStaggered staggered(g);
  EXPECT_EQ(staggered.storage_bytes(),
            static_cast<std::size_t>(g.volume()) * (6 * 2 + 4));
}

TEST(Half, GaugeRoundTripKeepsNearUnitarity) {
  LatticeGeometry g({2, 2, 2, 2});
  GaugeField<float> u(g);
  Rng rng(5);
  for (auto& link : u.all_links()) {
    link = convert<float>(random_su3(rng));
  }
  half_roundtrip(u);
  for (auto& link : u.all_links()) {
    EXPECT_LT(unitarity_error(link), 1e-3f);
  }
}

}  // namespace
}  // namespace lqcd
