#include "linalg/half.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "fields/packed_half.h"
#include "fields/precision.h"
#include "linalg/su3.h"
#include "util/rng.h"

namespace lqcd {
namespace {

TEST(Half, QuantizeRoundTripBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float y = dequantize_fixed(quantize_fixed(x, 1.0f), 1.0f);
    EXPECT_NEAR(x, y, 1.0f / kHalfScale);
  }
}

TEST(Half, QuantizeSaturates) {
  EXPECT_EQ(quantize_fixed(2.0f, 1.0f), 32767);
  EXPECT_EQ(quantize_fixed(-2.0f, 1.0f), -32767);
}

TEST(Half, SiteCodecErrorScalesWithNorm) {
  Rng rng(2);
  for (double scale : {1e-6, 1.0, 1e6}) {
    std::array<float, 24> site{}, decoded{};
    std::array<std::int16_t, 24> enc{};
    for (auto& v : site) {
      v = static_cast<float>(scale * rng.gaussian());
    }
    const float norm = encode_site_half(site, enc);
    decode_site_half(enc, norm, decoded);
    for (std::size_t i = 0; i < site.size(); ++i) {
      EXPECT_NEAR(site[i], decoded[i], half_error_bound(norm))
          << "scale=" << scale;
    }
  }
}

TEST(Half, ZeroSiteExact) {
  std::array<float, 6> site{}, decoded{1, 1, 1, 1, 1, 1};
  std::array<std::int16_t, 6> enc{};
  const float norm = encode_site_half(site, enc);
  decode_site_half(enc, norm, decoded);
  for (float v : decoded) EXPECT_EQ(v, 0.0f);
}

TEST(Half, RoundTripIdempotent) {
  // Quantizing an already-quantized site must be exact.
  Rng rng(3);
  std::array<float, 24> site{};
  for (auto& v : site) v = static_cast<float>(rng.gaussian());
  roundtrip_site_half(site);
  std::array<float, 24> again = site;
  roundtrip_site_half(again);
  for (std::size_t i = 0; i < site.size(); ++i) EXPECT_EQ(site[i], again[i]);
}

TEST(Half, PackedFieldMatchesEmulation) {
  // The int16 container and the in-place round trip must agree bitwise.
  LatticeGeometry g({4, 4, 4, 4});
  WilsonField<float> f(g);
  Rng rng(4);
  for (auto& s : f.sites()) {
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        s[sp][c] = Cplx<float>(static_cast<float>(rng.gaussian()),
                               static_cast<float>(rng.gaussian()));
      }
    }
  }
  WilsonField<float> emulated = f;
  half_roundtrip(emulated);

  PackedHalfWilson packed(g);
  packed.pack(f);
  WilsonField<float> unpacked(g);
  packed.unpack(unpacked);

  auto a = emulated.sites();
  auto b = unpacked.sites();
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        EXPECT_EQ(a[i][sp][c], b[i][sp][c]);
      }
    }
  }
}

TEST(Half, PackedFieldFootprint) {
  LatticeGeometry g({4, 4, 4, 4});
  PackedHalfWilson packed(g);
  // 24 int16 + 1 float norm per site.
  EXPECT_EQ(packed.storage_bytes(),
            static_cast<std::size_t>(g.volume()) * (24 * 2 + 4));
  PackedHalfStaggered staggered(g);
  EXPECT_EQ(staggered.storage_bytes(),
            static_cast<std::size_t>(g.volume()) * (6 * 2 + 4));
}

TEST(Half, GaugeRoundTripKeepsNearUnitarity) {
  LatticeGeometry g({2, 2, 2, 2});
  GaugeField<float> u(g);
  Rng rng(5);
  for (auto& link : u.all_links()) {
    link = convert<float>(random_su3(rng));
  }
  half_roundtrip(u);
  for (auto& link : u.all_links()) {
    EXPECT_LT(unitarity_error(link), 1e-3f);
  }
}

}  // namespace
}  // namespace lqcd
