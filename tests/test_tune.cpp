// Tests for the autotuning subsystem (src/tune): cache persistence and
// version gating, driver candidate selection with an injected clock, the
// LQCD_TUNE kill switch, the policy-class opt-in, and — most importantly —
// that tuning never changes numerics: tuned site loops are bitwise
// identical to the untuned path, and reductions are bitwise identical
// across worker counts and tune settings.

#include "tune/tune_launch.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "comm/counters.h"
#include "comm/wire_format.h"
#include "fields/blas.h"
#include "linalg/simd.h"
#include "tune/schwarz_policy.h"
#include "tune/site_loop.h"
#include "tune/tune_cache.h"
#include "util/parallel_for.h"
#include "util/rng.h"

namespace lqcd {
namespace {

TuneKey key_of(const std::string& kernel, const std::string& aux,
               std::int64_t volume, int workers) {
  TuneKey k;
  k.kernel = kernel;
  k.aux = aux;
  k.volume = volume;
  k.workers = workers;
  return k;
}

CallbackTunable::Candidate noop_candidate(std::string param) {
  return {std::move(param), [] {}};
}

class TuneTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_worker_count(1);
    set_tuning_enabled(true);
  }

  std::string temp_path(const std::string& name) const {
    return ::testing::TempDir() + name;
  }
};

// --- cache persistence ----------------------------------------------------

TEST_F(TuneTest, CacheRoundTripsThroughDisk) {
  TuneCache cache;
  cache.store(key_of("wilson_hop", "f64,par=e", 1024, 4),
              {"chunks=32", 12.5, 40.0});
  cache.store(key_of("blas_axpy", "site192", 4096, 2), {"chunks=8", 3.0, 3.5});
  const std::string path = temp_path("roundtrip.tsv");
  ASSERT_TRUE(cache.save(path));

  TuneCache loaded;
  ASSERT_TRUE(loaded.load(path));
  ASSERT_EQ(loaded.size(), 2u);
  const auto hit = loaded.lookup(key_of("wilson_hop", "f64,par=e", 1024, 4));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->param, "chunks=32");
  EXPECT_DOUBLE_EQ(hit->best_us, 12.5);
  EXPECT_DOUBLE_EQ(hit->default_us, 40.0);
  EXPECT_FALSE(loaded.lookup(key_of("wilson_hop", "f64,par=o", 1024, 4)));
}

TEST_F(TuneTest, VersionMismatchInvalidatesWholeFile) {
  const std::string path = temp_path("stale_version.tsv");
  {
    std::ofstream out(path);
    out << "lqcd-tunecache " << TuneCache::kVersion + 1 << "\n";
    out << "wilson_hop\tf64\t1024\t4\tchunks=32\t12.5\t40.0\n";
  }
  TuneCache cache;
  EXPECT_FALSE(cache.load(path));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(TuneTest, LaneConfigMismatchInvalidatesWholeFile) {
  // The header carries the build's SoA lane widths (lanes=fNdM, from
  // LQCD_SIMD_BYTES); a cache written by a build with different widths —
  // or by an old build that wrote no token at all — must be discarded
  // wholesale, never applied.
  for (const char* stale_header :
       {"lanes=f16d8", ""}) {  // wrong widths / pre-token format
    const std::string path = temp_path("stale_lanes.tsv");
    {
      std::ofstream out(path);
      out << "lqcd-tunecache " << TuneCache::kVersion;
      if (*stale_header != '\0') out << ' ' << stale_header;
      out << "\n";
      out << "wilson_hop\tf64,soa2\t1024\t4\tchunks=32\t12.5\t40.0\n";
    }
    TuneCache cache;
    EXPECT_FALSE(cache.load(path)) << "header token '" << stale_header << "'";
    EXPECT_EQ(cache.size(), 0u);
  }
}

TEST_F(TuneTest, SavedHeaderCarriesThisBuildsLaneConfig) {
  TuneCache cache;
  cache.store(key_of("wilson_hop", "f32,soa4", 512, 1), {"chunks=4", 1.0, 2.0});
  const std::string path = temp_path("lanes_header.tsv");
  ASSERT_TRUE(cache.save(path));
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const std::string want = "lanes=f" + std::to_string(kSoaLanes<float>) +
                           "d" + std::to_string(kSoaLanes<double>);
  EXPECT_NE(header.find(want), std::string::npos) << header;
  // And it round-trips through load on the same build.
  TuneCache loaded;
  EXPECT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 1u);
}

TEST_F(TuneTest, GhostWireCodecMismatchInvalidatesWholeFile) {
  // The header also carries the ghost-wire codec token (wire=uN,
  // comm/wire_format.h).  A cache written before the reconstruction axis
  // existed (no token), or against a different wire byte layout, holds
  // `*_ghost_prec` / `*_ghost_wire` policy rows whose meaning changed —
  // it must be discarded wholesale.
  const std::string lanes = "lanes=f" + std::to_string(kSoaLanes<float>) +
                            "d" + std::to_string(kSoaLanes<double>);
  for (const char* stale_wire : {"wire=u0", ""}) {
    const std::string path = temp_path("stale_wire.tsv");
    {
      std::ofstream out(path);
      out << "lqcd-tunecache " << TuneCache::kVersion << ' ' << lanes;
      if (*stale_wire != '\0') out << ' ' << stale_wire;
      out << "\n";
      out << "wilson_part_ghost_prec\tf64\t1024\t4\tghost_prec=half\t12.5\t"
             "40.0\n";
    }
    TuneCache cache;
    EXPECT_FALSE(cache.load(path)) << "wire token '" << stale_wire << "'";
    EXPECT_EQ(cache.size(), 0u);
  }
}

TEST_F(TuneTest, SavedHeaderCarriesGhostWireCodecToken) {
  TuneCache cache;
  cache.store(key_of("wilson_part_ghost_wire", "f64", 512, 1),
              {"wire=unit,half", 1.0, 2.0});
  const std::string path = temp_path("wire_header.tsv");
  ASSERT_TRUE(cache.save(path));
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find(ghost_wire_codec_token()), std::string::npos)
      << header;
  TuneCache loaded;
  EXPECT_TRUE(loaded.load(path));
  const auto hit =
      loaded.lookup(key_of("wilson_part_ghost_wire", "f64", 512, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->param, "wire=unit,half");
}

TEST_F(TuneTest, MalformedHeaderIsRejected) {
  const std::string path = temp_path("garbage.tsv");
  {
    std::ofstream out(path);
    out << "not a tunecache at all\n";
  }
  TuneCache cache;
  EXPECT_FALSE(cache.load(path));
  EXPECT_EQ(cache.size(), 0u);
}

// --- driver selection with a fake timer -----------------------------------

// Scripted clock: candidate c takes times[c] fake seconds per run.  With
// warmups=0 and reps=1 the driver calls the clock exactly twice per
// candidate, so feeding back-to-back (t0, t0 + times[c]) pairs steers the
// selection deterministically.
std::function<double()> scripted_clock(const std::vector<double>& durations,
                                       int* calls = nullptr) {
  auto state = std::make_shared<std::pair<std::size_t, double>>(0, 0.0);
  auto durs = std::make_shared<std::vector<double>>(durations);
  return [state, durs, calls]() {
    if (calls != nullptr) ++*calls;
    const std::size_t i = state->first++;
    if (i % 2 == 1) state->second += (*durs)[(i / 2) % durs->size()];
    return state->second;
  };
}

TEST_F(TuneTest, SelectsFastestCandidateAndRecordsDefault) {
  std::string applied;
  std::vector<CallbackTunable::Candidate> cands;
  for (const char* p : {"chunks=default", "chunks=fast", "chunks=slow"}) {
    cands.push_back({p, [&applied, p] { applied = p; }});
  }
  CallbackTunable t("fake_kernel", "aux", 100, TuneClass::numerics_neutral,
                    cands, [] {});

  TuneCache cache;
  TuneOptions opts;
  opts.warmups = 0;
  opts.reps = 1;
  opts.cache = &cache;
  opts.clock = scripted_clock({5.0, 1.0, 3.0});

  const TuneResult res = tune_launch(t, opts);
  EXPECT_EQ(res.param, "chunks=fast");
  EXPECT_EQ(applied, "chunks=fast");
  EXPECT_DOUBLE_EQ(res.best_us, 1.0e6);
  EXPECT_DOUBLE_EQ(res.default_us, 5.0e6);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Second launch: answered from the cache, clock never consulted.
  int clock_calls = 0;
  TuneOptions warm = opts;
  warm.clock = scripted_clock({5.0, 1.0, 3.0}, &clock_calls);
  const TuneResult cached = tune_launch(t, warm);
  EXPECT_EQ(cached.param, "chunks=fast");
  EXPECT_EQ(clock_calls, 0);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(TuneTest, StaleCacheRowTriggersRetune) {
  CallbackTunable t("stale_kernel", "", 100, TuneClass::numerics_neutral,
                    {noop_candidate("chunks=1"), noop_candidate("chunks=2")},
                    [] {});
  TuneCache cache;
  // A row whose param no longer matches any candidate (set changed since
  // it was written).
  cache.store(key_of("stale_kernel", "", 100, worker_count()),
              {"chunks=999_gone", 1.0, 1.0});

  TuneOptions opts;
  opts.warmups = 0;
  opts.reps = 1;
  opts.cache = &cache;
  opts.clock = scripted_clock({2.0, 1.0});
  const TuneResult res = tune_launch(t, opts);
  EXPECT_EQ(res.param, "chunks=2");
  EXPECT_EQ(cache.stats().stale, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);  // initial store + re-tune
}

TEST_F(TuneTest, PreAndPostTuneBracketTheSweep) {
  int pre = 0, post = 0, runs = 0;
  CallbackTunable t("bracket", "", 10, TuneClass::numerics_neutral,
                    {noop_candidate("a"), noop_candidate("b")},
                    [&runs] { ++runs; });
  t.set_pre_tune([&pre] { ++pre; });
  t.set_post_tune([&post] { ++post; });

  TuneCache cache;
  TuneOptions opts;
  opts.warmups = 1;
  opts.reps = 2;
  opts.cache = &cache;
  opts.clock = scripted_clock({1.0, 2.0});
  tune_launch(t, opts);
  EXPECT_EQ(pre, 1);
  EXPECT_EQ(post, 1);
  EXPECT_EQ(runs, 2 * (1 + 2));  // (warmup + reps) per candidate
}

// --- kill switch and policy gate ------------------------------------------

TEST_F(TuneTest, DisabledTuningAppliesDefaultAndCountsBypass) {
  std::string applied;
  CallbackTunable t(
      "bypass_kernel", "", 100, TuneClass::numerics_neutral,
      {{"chunks=default", [&applied] { applied = "chunks=default"; }},
       {"chunks=other", [&applied] { applied = "chunks=other"; }}},
      [] {});
  TuneCache cache;
  TuneOptions opts;
  opts.cache = &cache;

  set_tuning_enabled(false);
  const TuneResult res = tune_launch(t, opts);
  EXPECT_EQ(res.param, "chunks=default");
  EXPECT_EQ(applied, "chunks=default");
  EXPECT_EQ(cache.stats().bypassed, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(TuneTest, EnvKillSwitchIsHonoured) {
  ASSERT_EQ(setenv("LQCD_TUNE", "0", 1), 0);
  init_tuning_from_env();
  EXPECT_FALSE(tuning_enabled());

  ASSERT_EQ(setenv("LQCD_TUNE", "1", 1), 0);
  init_tuning_from_env();
  EXPECT_TRUE(tuning_enabled());

  ASSERT_EQ(unsetenv("LQCD_TUNE"), 0);
  init_tuning_from_env();
  EXPECT_TRUE(tuning_enabled());  // default is on
}

TEST_F(TuneTest, PolicyTunableRequiresExplicitOptIn) {
  CallbackTunable t("policy_kernel", "", 100, TuneClass::policy,
                    {noop_candidate("a"), noop_candidate("b")}, [] {});
  TuneCache cache;
  TuneOptions opts;
  opts.warmups = 0;
  opts.reps = 1;
  opts.cache = &cache;
  opts.clock = scripted_clock({1.0, 2.0});
  EXPECT_THROW(tune_launch(t, opts), std::logic_error);

  opts.allow_policy = true;
  EXPECT_NO_THROW(tune_launch(t, opts));
}

TEST_F(TuneTest, ZeroCandidatesIsALogicError) {
  CallbackTunable t("empty", "", 1, TuneClass::numerics_neutral, {}, [] {});
  EXPECT_THROW(tune_launch(t), std::logic_error);
}

// --- numerics: tuning must never change results ---------------------------

WilsonField<double> random_field(const LatticeGeometry& g,
                                 std::uint64_t seed) {
  WilsonField<double> f(g);
  Rng rng(seed);
  for (auto& s : f.sites()) {
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) {
        s[sp][c] = Cplx<double>(rng.gaussian(), rng.gaussian());
      }
    }
  }
  return f;
}

bool bitwise_equal(const WilsonField<double>& a, const WilsonField<double>& b) {
  return std::memcmp(a.sites().data(), b.sites().data(),
                     a.sites().size_bytes()) == 0;
}

TEST_F(TuneTest, TunedAxpyIsBitwiseIdenticalToUntuned) {
  const LatticeGeometry g({4, 4, 4, 8});
  const WilsonField<double> x = random_field(g, 11);
  const WilsonField<double> y0 = random_field(g, 12);

  set_tuning_enabled(false);
  WilsonField<double> untuned = y0;
  axpy(1.75, x, untuned);

  set_tuning_enabled(true);
  for (int workers : {1, 3, 4}) {
    set_worker_count(workers);
    WilsonField<double> tuned = y0;
    axpy(1.75, x, tuned);  // runs the full tuning sweep on first call
    EXPECT_TRUE(bitwise_equal(tuned, untuned)) << "workers=" << workers;
  }
}

TEST_F(TuneTest, ReductionsAreBitwiseStableAcrossWorkersAndTuneSettings) {
  const LatticeGeometry g({4, 4, 4, 8});
  const WilsonField<double> x = random_field(g, 21);
  const WilsonField<double> y = random_field(g, 22);

  set_worker_count(1);
  set_tuning_enabled(false);
  const double n_ref = norm2(x);
  const std::complex<double> d_ref = dot(x, y);

  for (bool tune : {false, true}) {
    set_tuning_enabled(tune);
    for (int workers : {1, 2, 4}) {
      set_worker_count(workers);
      EXPECT_EQ(norm2(x), n_ref) << "tune=" << tune << " workers=" << workers;
      EXPECT_EQ(dot(x, y), d_ref) << "tune=" << tune << " workers=" << workers;
    }
  }
}

TEST_F(TuneTest, RawParallelReduceIsWorkerCountIndependent) {
  const std::int64_t n = 10'000;
  std::vector<double> v(static_cast<std::size_t>(n));
  Rng rng(7);
  for (auto& e : v) e = rng.gaussian();

  set_worker_count(1);
  const double ref = parallel_reduce<double>(
      n, [&](std::int64_t i) { return v[static_cast<std::size_t>(i)]; });
  for (int workers : {2, 3, 8}) {
    set_worker_count(workers);
    const double got = parallel_reduce<double>(
        n, [&](std::int64_t i) { return v[static_cast<std::size_t>(i)]; });
    EXPECT_EQ(got, ref) << "workers=" << workers;
  }
}

// --- Schwarz policy helpers ------------------------------------------------

TEST_F(TuneTest, SchwarzPolicyParamRoundTrips) {
  SchwarzPolicy p;
  p.block_grid = {1, 2, 2, 4};
  p.mr_steps = 6;
  SchwarzPolicy q;
  ASSERT_TRUE(SchwarzPolicy::parse(p.param(), q));
  EXPECT_EQ(q.block_grid, p.block_grid);
  EXPECT_EQ(q.mr_steps, p.mr_steps);
  EXPECT_FALSE(SchwarzPolicy::parse("nonsense", q));
}

TEST_F(TuneTest, EnumeratedPoliciesAreFeasible) {
  const LatticeGeometry g({8, 8, 8, 16});
  const auto policies = enumerate_schwarz_policies(g, 8, {5, 10});
  ASSERT_FALSE(policies.empty());
  for (const auto& p : policies) {
    int blocks = 1;
    for (int mu = 0; mu < kNDim; ++mu) {
      const auto m = static_cast<std::size_t>(mu);
      ASSERT_GT(p.block_grid[m], 0);
      ASSERT_EQ(g.dims()[m] % p.block_grid[m], 0);
      const int extent = g.dims()[m] / p.block_grid[m];
      EXPECT_EQ(extent % 2, 0);
      EXPECT_GE(extent, 4);
      blocks *= p.block_grid[m];
    }
    EXPECT_GE(blocks, 2);
    EXPECT_LE(blocks, 8);
    EXPECT_GE(p.cut_fraction(g), 0.0);
    EXPECT_LT(p.cut_fraction(g), 1.0);
  }
}

// --- global exchange counters (satellite API) ------------------------------

TEST_F(TuneTest, GlobalExchangeCountersSnapshotAndReset) {
  reset_exchange_counters();
  EXPECT_EQ(exchange_counters_snapshot().exchanges, 0u);
  EXPECT_EQ(exchange_counters_snapshot().total_bytes(), 0u);

  ExchangeCounters delta;
  delta.bytes_by_dim[3] = 128;
  delta.messages = 2;
  delta.exchanges = 1;
  global_exchange_counters() += delta;

  const ExchangeCounters snap = exchange_counters_snapshot();
  EXPECT_EQ(snap.exchanges, 1u);
  EXPECT_EQ(snap.messages, 2u);
  EXPECT_EQ(snap.total_bytes(), 128u);

  reset_exchange_counters();
  EXPECT_EQ(exchange_counters_snapshot().total_bytes(), 0u);
}

}  // namespace
}  // namespace lqcd
