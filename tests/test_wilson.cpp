// Wilson / Wilson-clover operator correctness against the independent
// dense assembly, plus structural identities.
#include <gtest/gtest.h>

#include <cstdlib>

#include "dirac/dense_reference.h"
#include "dirac/even_odd.h"
#include "dirac/recon_policy.h"
#include "dirac/wilson_kernel.h"
#include "dirac/wilson_ops.h"
#include "fields/blas.h"
#include "fields/compressed_gauge.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"

namespace lqcd {
namespace {

TEST(Wilson, HopMatchesFullSpinorReference) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 1);
  const WilsonField<double> in = gaussian_wilson_source(g, 2);
  WilsonField<double> fast(g), ref(g);
  wilson_hop(fast, u, in);
  wilson_hop_reference(ref, u, in);
  axpy(-1.0, ref, fast);
  EXPECT_LT(norm2(fast), 1e-22 * norm2(ref));
}

TEST(Wilson, OperatorMatchesDenseMatrix) {
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 3);
  const double mass = -0.1;
  const WilsonField<double> in = gaussian_wilson_source(g, 4);

  WilsonCloverOperator<double> m(u, nullptr, mass);
  WilsonField<double> out(g);
  m.apply(out, in);

  const DenseMatrix<double> md = dense_wilson_clover(u, nullptr, mass);
  const auto dense_out = md.multiply(flatten(in));
  WilsonField<double> expect(g);
  unflatten(dense_out, expect);

  axpy(-1.0, expect, out);
  EXPECT_LT(norm2(out), 1e-20 * norm2(expect));
}

TEST(WilsonClover, OperatorMatchesDenseMatrix) {
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 5);
  const CloverField<double> a = build_clover_field(u, 1.3);
  const double mass = 0.05;
  const WilsonField<double> in = gaussian_wilson_source(g, 6);

  WilsonCloverOperator<double> m(u, &a, mass);
  WilsonField<double> out(g);
  m.apply(out, in);

  const DenseMatrix<double> md = dense_wilson_clover(u, &a, mass);
  const auto dense_out = md.multiply(flatten(in));
  WilsonField<double> expect(g);
  unflatten(dense_out, expect);

  axpy(-1.0, expect, out);
  EXPECT_LT(norm2(out), 1e-20 * norm2(expect));
}

TEST(WilsonClover, Gamma5Hermiticity) {
  // gamma5 M gamma5 = M^dag: <x, g5 M g5 y> = conj(<y, g5 M g5 x>) ...
  // equivalently <g5 x, M g5 y> = conj(<g5 y, M g5 x>).  Test via
  // <a, M b> = <g5 M g5 a, b>.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 7);
  const CloverField<double> cl = build_clover_field(u, 0.8);
  WilsonCloverOperator<double> m(u, &cl, -0.3);

  const WilsonField<double> a = gaussian_wilson_source(g, 8);
  const WilsonField<double> b = gaussian_wilson_source(g, 9);
  WilsonField<double> mb(g);
  m.apply(mb, b);
  const std::complex<double> lhs = dot(a, mb);

  // rhs = <g5 M g5 a, b>.
  WilsonField<double> g5a = a;
  apply_gamma5_field(g5a);
  WilsonField<double> mg5a(g);
  m.apply(mg5a, g5a);
  apply_gamma5_field(mg5a);
  const std::complex<double> rhs = std::conj(dot(b, mg5a));

  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-8 * std::abs(lhs));
}

TEST(Wilson, FreeFieldActsDiagonallyOnConstant) {
  // On the free field a constant spinor field is an eigenvector of the
  // hopping term with eigenvalue 8 (all projectors sum to 2 per direction
  // pair), so M psi = (4 + m - 4) psi = m psi.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = unit_gauge(g);
  WilsonField<double> in(g);
  for (auto& s : in.sites()) {
    for (int sp = 0; sp < kNSpin; ++sp) {
      for (int c = 0; c < kNColor; ++c) s[sp][c] = Cplx<double>(1.0, -2.0);
    }
  }
  const double mass = 0.37;
  WilsonCloverOperator<double> m(u, nullptr, mass);
  WilsonField<double> out(g);
  m.apply(out, in);
  WilsonField<double> expect = in;
  scale(mass, expect);
  axpy(-1.0, expect, out);
  EXPECT_LT(norm2(out), 1e-20 * norm2(in));
}

TEST(Wilson, GaugeCovariance) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 10);
  const auto omega = random_gauge_rotation(g, 11);
  const GaugeField<double> v = gauge_transform(u, omega);
  const WilsonField<double> in = gaussian_wilson_source(g, 12);

  WilsonCloverOperator<double> mu_op(u, nullptr, 0.1);
  WilsonCloverOperator<double> mv_op(v, nullptr, 0.1);

  // M_v (Omega in) == Omega (M_u in).
  WilsonField<double> in_rot = gauge_transform(in, omega);
  WilsonField<double> lhs(g);
  mv_op.apply(lhs, in_rot);
  WilsonField<double> mu_in(g);
  mu_op.apply(mu_in, in);
  WilsonField<double> rhs = gauge_transform(mu_in, omega);
  axpy(-1.0, rhs, lhs);
  EXPECT_LT(norm2(lhs), 1e-20 * norm2(rhs));
}

TEST(Wilson, ParityRestrictedHopOnlyTouchesTarget) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 13);
  const WilsonField<double> in = gaussian_wilson_source(g, 14);
  WilsonField<double> out(g);
  // Poison the field; the Odd-target hop must rewrite odd sites only.
  for (auto& s : out.sites()) s[0][0] = Cplx<double>(777.0);
  wilson_hop(out, u, in, Parity::Odd);
  WilsonField<double> full(g);
  wilson_hop(full, u, in);
  for (std::int64_t s = 0; s < g.half_volume(); ++s) {
    EXPECT_EQ(out.at(s)[0][0], Cplx<double>(777.0));
  }
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    ASSERT_LT(norm2(out.at(s) - full.at(s)), 1e-24);
  }
}

TEST(Wilson, DirichletMaskDropsCrossBlockCoupling) {
  // With the mask, a source supported on one block produces output only in
  // that block.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 15);
  BlockMask mask(g, {1, 1, 1, 2});
  WilsonField<double> in(g);
  set_zero(in);
  // Delta source in block 0.
  in.at(Coord{1, 1, 1, 1})[0][0] = Cplx<double>(1.0);
  WilsonField<double> out(g);
  wilson_hop(out, u, in, std::nullopt, &mask);
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    if (mask.block_of_site(s) != 0) {
      ASSERT_EQ(norm2(out.at(s)), 0.0);
    }
  }
}

TEST(Wilson, NormalOperatorHermitianPositive) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 16);
  WilsonCloverOperator<double> m(u, nullptr, 0.2);
  WilsonNormalOperator<double> n(m);
  const WilsonField<double> a = gaussian_wilson_source(g, 17);
  const WilsonField<double> b = gaussian_wilson_source(g, 18);
  WilsonField<double> na(g), nb(g);
  n.apply(na, a);
  n.apply(nb, b);
  const auto ab = dot(a, nb);
  const auto ba = dot(b, na);
  EXPECT_NEAR(std::abs(ab - std::conj(ba)), 0.0, 1e-8 * std::abs(ab));
  EXPECT_GT(dot(a, na).real(), 0.0);
}

TEST(WilsonRecon, HopFromCompressedGaugeMatchesFull) {
  // The reconstruction executed in the hot path: the same hop kernel fed
  // from a reconstruct-N field must reproduce the full-gauge result to the
  // codec's round-trip accuracy (links are exactly unitary here).
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 21);
  const WilsonField<double> in = gaussian_wilson_source(g, 22);
  WilsonField<double> full(g);
  wilson_hop(full, u, in);

  const CompressedGaugeField<double> c12(u, Reconstruct::Twelve);
  WilsonField<double> out12(g);
  wilson_hop(out12, c12, in);
  axpy(-1.0, full, out12);
  EXPECT_LT(norm2(out12), 1e-24 * norm2(full));

  const CompressedGaugeField<double> c8(u, Reconstruct::Eight);
  WilsonField<double> out8(g);
  wilson_hop(out8, c8, in);
  axpy(-1.0, full, out8);
  EXPECT_LT(norm2(out8), 1e-16 * norm2(full));
}

TEST(WilsonRecon, OperatorReconMatchesDenseMatrix) {
  // The full fused operator running on compressed links still matches the
  // independent dense assembly (clover on).
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 23);
  const CloverField<double> a = build_clover_field(u, 1.1);
  const double mass = 0.05;
  const WilsonField<double> in = gaussian_wilson_source(g, 24);

  const DenseMatrix<double> md = dense_wilson_clover(u, &a, mass);
  const auto dense_out = md.multiply(flatten(in));
  WilsonField<double> expect(g);
  unflatten(dense_out, expect);

  for (Reconstruct r : {Reconstruct::Twelve, Reconstruct::Eight}) {
    WilsonCloverOperator<double> m(u, &a, mass, nullptr, r);
    EXPECT_EQ(m.recon(), r);
    WilsonField<double> out(g);
    m.apply(out, in);
    axpy(-1.0, expect, out);
    EXPECT_LT(norm2(out), 1e-16 * norm2(expect)) << to_string(r);
  }
}

TEST(WilsonRecon, SchurOperatorReconMatchesFull) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 25);
  const CloverField<double> a = build_clover_field(u, 0.9);
  WilsonCloverSchurOperator<double> ref(u, &a, 0.1);
  WilsonCloverSchurOperator<double> r12(u, &a, 0.1, nullptr,
                                        Reconstruct::Twelve);

  WilsonField<double> in = gaussian_wilson_source(g, 26);
  for (std::int64_t s = g.half_volume(); s < g.volume(); ++s) {
    in.at(s) = WilsonSpinor<double>{};
  }
  WilsonField<double> expect(g), got(g);
  ref.apply(expect, in);
  r12.apply(got, in);
  axpy(-1.0, expect, got);
  EXPECT_LT(norm2(got), 1e-22 * norm2(expect));
}

TEST(WilsonRecon, EnvForcesSchemeOverCtorDefault) {
  // LQCD_RECON=12 must override the constructor's format everywhere.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 27);
  ASSERT_EQ(setenv("LQCD_RECON", "12", 1), 0);
  init_recon_from_env();
  WilsonCloverOperator<double> forced(u, nullptr, 0.2);
  unsetenv("LQCD_RECON");
  init_recon_from_env();
  EXPECT_EQ(forced.recon(), Reconstruct::Twelve);

  // And with it unset, the ctor default (seed behaviour) is back.
  WilsonCloverOperator<double> plain(u, nullptr, 0.2);
  EXPECT_EQ(plain.recon(), Reconstruct::None);
}

}  // namespace
}  // namespace lqcd
