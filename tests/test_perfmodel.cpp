// Performance model: analytic byte formulas vs the metered implementation,
// stream-schedule invariants, and the qualitative shapes the figures rely
// on (comm-bound degradation, partitioning trade-off, solver crossover
// mechanics).
#include <gtest/gtest.h>

#include "comm/counters.h"
#include "dirac/partitioned.h"
#include "dirac/recon_policy.h"
#include "dirac/staggered.h"
#include "dirac/wilson_kernel.h"
#include "fields/compressed_gauge.h"
#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "perfmodel/dslash_model.h"
#include "perfmodel/machine.h"
#include "perfmodel/solver_model.h"
#include "perfmodel/stencil.h"

namespace lqcd {
namespace {

TEST(Stencil, FaceBytesMatchMeteredWilson) {
  // The model's wire-byte formula must equal what the implementation
  // actually sends per application.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 151);
  for (const std::array<int, 4> grid :
       {std::array<int, 4>{1, 1, 1, 2}, std::array<int, 4>{1, 1, 2, 2},
        std::array<int, 4>{2, 2, 2, 2}}) {
    Partitioning part(g, grid);
    PartitionedWilsonClover<double> op(part, u, nullptr, 0.0);
    const WilsonField<double> in = gaussian_wilson_source(g, 152);
    WilsonField<double> out(g);
    op.apply(out, in);
    const double metered =
        static_cast<double>(op.traffic().spinor.total_bytes()) /
        part.num_ranks();
    const double model =
        total_face_bytes(part, StencilKind::Wilson, Precision::Double);
    EXPECT_DOUBLE_EQ(metered, model);
  }
}

TEST(Stencil, FaceBytesMatchMeteredStaggered) {
  const LatticeGeometry g({4, 4, 8, 8});
  const GaugeField<double> u = hot_gauge(g, 153);
  const AsqtadLinks links = build_asqtad_links(u);
  Partitioning part(g, {1, 1, 2, 2});
  PartitionedStaggered<double> op(part, links.fat, links.lng, 0.1);
  const StaggeredField<double> in = gaussian_staggered_source(g, 154);
  StaggeredField<double> out(g);
  op.apply(out, in);
  const double metered =
      static_cast<double>(op.traffic().spinor.total_bytes()) /
      part.num_ranks();
  const double model = total_face_bytes(part, StencilKind::ImprovedStaggered,
                                        Precision::Double);
  EXPECT_DOUBLE_EQ(metered, model);
}

TEST(Stencil, FlopConventions) {
  EXPECT_EQ(dslash_flops_per_site(StencilKind::Wilson), 1320.0);
  EXPECT_EQ(dslash_flops_per_site(StencilKind::WilsonClover), 1824.0);
  EXPECT_EQ(dslash_flops_per_site(StencilKind::ImprovedStaggered), 1146.0);
}

TEST(Stencil, ReconstructionReducesBytes) {
  const double none = dslash_bytes_per_site(StencilKind::Wilson,
                                            Precision::Single,
                                            Reconstruct::None);
  const double r12 = dslash_bytes_per_site(StencilKind::Wilson,
                                           Precision::Single,
                                           Reconstruct::Twelve);
  const double r8 = dslash_bytes_per_site(StencilKind::Wilson,
                                          Precision::Single,
                                          Reconstruct::Eight);
  EXPECT_GT(none, r12);
  EXPECT_GT(r12, r8);
}

TEST(StreamSchedule, TotalAtLeastKernelAndCommBounds) {
  StreamScheduleInput in;
  in.cluster = edge_cluster();
  in.interior_kernel_us = 100;
  for (int mu = 2; mu < 4; ++mu) {
    StreamScheduleInput::Dim d;
    d.mu = mu;
    d.message_bytes = 1 << 20;
    d.gather_kernel_us = 5;
    d.exterior_kernel_us = 10;
    in.dims.push_back(d);
  }
  const StreamScheduleResult r = simulate_dslash_streams(in);
  EXPECT_GE(r.total_us, in.interior_kernel_us);
  EXPECT_GE(r.total_us, r.comm_critical_us);
  EXPECT_GE(r.gpu_idle_us, 0.0);
  EXPECT_FALSE(r.timeline.empty());
}

TEST(StreamSchedule, NoCommMeansNoIdle) {
  StreamScheduleInput in;
  in.cluster = edge_cluster();
  in.interior_kernel_us = 50;
  const StreamScheduleResult r = simulate_dslash_streams(in);
  EXPECT_DOUBLE_EQ(r.total_us, 50.0);
  EXPECT_DOUBLE_EQ(r.gpu_idle_us, 0.0);
}

TEST(StreamSchedule, CommBoundWhenInteriorSmall) {
  // Big messages + tiny kernel: the GPU must idle waiting for ghosts.
  StreamScheduleInput in;
  in.cluster = edge_cluster();
  in.interior_kernel_us = 5;
  StreamScheduleInput::Dim d;
  d.mu = 3;
  d.message_bytes = 8 << 20;
  d.gather_kernel_us = 2;
  d.exterior_kernel_us = 2;
  in.dims.push_back(d);
  const StreamScheduleResult r = simulate_dslash_streams(in);
  EXPECT_GT(r.gpu_idle_us, 0.0);
  EXPECT_GT(r.comm_critical_us, in.interior_kernel_us);
}

TEST(DslashModel, StrongScalingDegradesPerGpu) {
  // Fig. 5 mechanics: per-GPU Gflops falls as GPUs increase at fixed
  // global volume.
  const LatticeGeometry g({32, 32, 32, 256});
  DslashModelConfig cfg;
  cfg.cluster = edge_cluster();
  cfg.kind = StencilKind::WilsonClover;
  cfg.precision = Precision::Single;
  cfg.recon = Reconstruct::Twelve;

  double prev = 1e9;
  for (int gpus : {8, 32, 128, 256}) {
    cfg.part = Partitioning(g, {1, 1, gpus >= 32 ? 2 : 1,
                                gpus / (gpus >= 32 ? 2 : 1)});
    const DslashModelResult r = model_dslash(cfg);
    EXPECT_LT(r.gflops_per_gpu, prev);
    prev = r.gflops_per_gpu;
  }
}

TEST(DslashModel, HalfPrecisionAdvantageShrinksWhenCommBound) {
  // Fig. 5: "as the communications overhead grows, the performance
  // advantage of the half precision operator ... appears diminished."
  const LatticeGeometry g({32, 32, 32, 256});
  DslashModelConfig cfg;
  cfg.cluster = edge_cluster();
  cfg.kind = StencilKind::WilsonClover;
  cfg.recon = Reconstruct::Twelve;

  auto ratio_at = [&](std::array<int, 4> grid) {
    cfg.part = Partitioning(g, grid);
    cfg.precision = Precision::Half;
    const double hp = model_dslash(cfg).gflops_per_gpu;
    cfg.precision = Precision::Single;
    const double sp = model_dslash(cfg).gflops_per_gpu;
    return hp / sp;
  };
  const double small = ratio_at({1, 1, 1, 8});
  const double large = ratio_at({2, 2, 2, 32});
  EXPECT_GT(small, large);
  EXPECT_GT(small, 1.1);  // clearly faster when compute-bound
}

TEST(DslashModel, PartitioningTradeoffCrossesOver) {
  // Fig. 6 mechanics: at few GPUs fewer partitioned dims win (better
  // kernels); at many GPUs XYZT wins (better surface-to-volume).
  const LatticeGeometry g({64, 64, 64, 192});
  DslashModelConfig cfg;
  cfg.cluster = edge_cluster();
  cfg.kind = StencilKind::ImprovedStaggered;
  cfg.precision = Precision::Single;
  cfg.recon = Reconstruct::None;

  // 32 GPUs: the two decompositions happen to expose identical total
  // surface, so the byte-proportional communication model predicts a
  // near-tie; the kernel-rate penalty is what separates them when not
  // fully communication-bound (see EXPERIMENTS.md for the discussion of
  // the paper's stronger measured separation at 32 GPUs).
  cfg.part = Partitioning(g, {1, 1, 2, 16});
  const double zt_32 = model_dslash(cfg).gflops_per_gpu;
  const double zt_32_kernel = 1e6 / dirichlet_dslash_us(cfg);
  cfg.part = Partitioning(g, {2, 2, 2, 4});
  const double xyzt_32 = model_dslash(cfg).gflops_per_gpu;
  const double xyzt_32_kernel = 1e6 / dirichlet_dslash_us(cfg);

  cfg.part = Partitioning(g, {1, 1, 8, 32});
  const double zt_256 = model_dslash(cfg).gflops_per_gpu;
  cfg.part = Partitioning(g, {2, 2, 4, 16});
  const double xyzt_256 = model_dslash(cfg).gflops_per_gpu;

  // Kernel-only rates must order ZT > XYZT (the paper's "worst single-GPU
  // performance" for XYZT).
  EXPECT_GT(zt_32_kernel, 1.2 * xyzt_32_kernel);
  // End-to-end at 32 GPUs: comparable (byte-tied), ZT not behind by more
  // than a whisker.
  EXPECT_GT(zt_32, 0.97 * xyzt_32);
  // At 256 GPUs surface-to-volume dominates and XYZT wins outright.
  EXPECT_GT(xyzt_256, zt_256);
}

TEST(SolverModel, GcrDdCheaperPerResidualReductionAtScale) {
  // At 256 GPUs the communicating Schur apply is latency-dominated; the
  // GCR-DD iteration buys n_mr communication-free dslashes for one
  // communicating one.
  const LatticeGeometry g({32, 32, 32, 256});
  SolverModelConfig cfg;
  cfg.dslash.cluster = edge_cluster();
  cfg.dslash.kind = StencilKind::WilsonClover;
  cfg.dslash.precision = Precision::Single;
  cfg.dslash.part = Partitioning(g, {2, 2, 2, 32});
  cfg.n_mr = 10;

  const IterationCost bi = bicgstab_iteration(cfg);
  const IterationCost gcr = gcr_dd_iteration(cfg);
  // One GCR iteration does ~12 dslash-equivalents vs BiCGstab's 2 but must
  // cost far less than 6x as much time.
  EXPECT_LT(gcr.time_us, 4.0 * bi.time_us);
  EXPECT_GT(gcr.flops, 3.0 * bi.flops);
}

TEST(SolverModel, MultishiftBlasScalesWithShifts) {
  const LatticeGeometry g({64, 64, 64, 192});
  SolverModelConfig cfg;
  cfg.dslash.cluster = edge_cluster();
  cfg.dslash.kind = StencilKind::ImprovedStaggered;
  cfg.dslash.precision = Precision::Single;
  cfg.dslash.recon = Reconstruct::None;
  // Few GPUs: compute- and bandwidth-bound regime where the per-shift
  // BLAS tail is visible (at 64+ GPUs communication hides it).
  cfg.dslash.part = Partitioning(g, {1, 1, 1, 4});
  cfg.num_shifts = 1;
  const double t1 = multishift_iteration(cfg).time_us;
  cfg.num_shifts = 9;
  const double t9 = multishift_iteration(cfg).time_us;
  EXPECT_GT(t9, t1 * 1.15);
}

TEST(CpuModel, Fig9WindowReproduced) {
  // 10-17 sustained Tflops at >= 16k cores on 32^3 x 256 (Fig. 9).
  const double sites = 32.0 * 32 * 32 * 256;
  for (const CpuSystemSpec& sys :
       {jaguar_xt4(), jaguar_xt5(), intrepid_bgp()}) {
    const double t32k = cpu_sustained_tflops(sys, sites, 32768);
    EXPECT_GT(t32k, 5.0) << sys.name;
    EXPECT_LT(t32k, 20.0) << sys.name;
  }
}

TEST(CpuModel, KrakenCalibration) {
  // §9.2: MILC on Kraken reaches 942 Gflops with 4096 cores on 64^3 x 192.
  const double sites = 64.0 * 64 * 64 * 192;
  const double tflops = cpu_sustained_tflops(kraken_xt5(), sites, 4096);
  EXPECT_NEAR(tflops, 0.942, 0.1);
}

TEST(StreamSchedule, IntraNodeDirectionSkipsInfiniband) {
  StreamScheduleInput in;
  in.cluster = edge_cluster();
  in.interior_kernel_us = 10;
  StreamScheduleInput::Dim d;
  d.mu = 3;
  d.message_bytes = 1 << 20;
  d.gather_kernel_us = 2;
  d.exterior_kernel_us = 2;
  d.one_direction_intra_node = true;
  in.dims.push_back(d);
  const StreamScheduleResult r = simulate_dslash_streams(in);
  int mpi = 0, shm = 0;
  for (const auto& e : r.timeline) {
    if (e.label.rfind("MPIshm", 0) == 0) ++shm;
    else if (e.label.rfind("MPI", 0) == 0) ++mpi;
  }
  EXPECT_EQ(shm, 1);
  EXPECT_EQ(mpi, 1);

  // Without the intra-node path both directions hit InfiniBand and the
  // exchange cannot be faster.
  in.dims[0].one_direction_intra_node = false;
  const StreamScheduleResult r2 = simulate_dslash_streams(in);
  EXPECT_GE(r2.comm_critical_us, r.comm_critical_us);
}

TEST(StreamSchedule, MessageOverheadDominatesSmallMessages) {
  // At tiny payloads the fixed per-message software overhead sets the
  // communication time — the regime where GCR-DD pays off.
  StreamScheduleInput in;
  in.cluster = edge_cluster();
  in.interior_kernel_us = 1;
  StreamScheduleInput::Dim d;
  d.mu = 3;
  d.message_bytes = 1024;  // ~nothing
  d.gather_kernel_us = 1;
  d.exterior_kernel_us = 1;
  in.dims.push_back(d);
  const StreamScheduleResult r = simulate_dslash_streams(in);
  EXPECT_GT(r.comm_critical_us, in.cluster.node.message_overhead_us);
}

TEST(DslashModel, ReconstructionRescalesKernelRate) {
  // Bandwidth-bound kernels speed up with fewer bytes per link: rate(8) >
  // rate(12) > rate(18), with ratios bounded by the byte ratios.
  DslashModelConfig cfg;
  cfg.cluster = edge_cluster();
  cfg.kind = StencilKind::Wilson;
  cfg.precision = Precision::Single;
  cfg.part = Partitioning(LatticeGeometry({8, 8, 8, 8}), {1, 1, 1, 1});
  cfg.recon = Reconstruct::Twelve;
  const double r12 = sustained_kernel_gflops(cfg);
  cfg.recon = Reconstruct::Eight;
  const double r8 = sustained_kernel_gflops(cfg);
  cfg.recon = Reconstruct::None;
  const double r18 = sustained_kernel_gflops(cfg);
  EXPECT_GT(r8, r12);
  EXPECT_GT(r12, r18);
  const double byte_ratio =
      dslash_bytes_per_site(StencilKind::Wilson, Precision::Single,
                            Reconstruct::None) /
      dslash_bytes_per_site(StencilKind::Wilson, Precision::Single,
                            Reconstruct::Twelve);
  EXPECT_NEAR(r12 / r18, byte_ratio, 1e-12);
}

TEST(Stencil, GaugeBytesMatchMeteredWilsonRecon) {
  // The model's per-recon gauge-byte term must equal what the hop kernel
  // actually meters into dslash.gauge_bytes{recon=N}: 8 link loads per site
  // at reals_per_link(recon) reals each.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 161);
  const WilsonField<double> in = gaussian_wilson_source(g, 162);
  WilsonField<double> out(g);
  const double b = bytes_per_real(Precision::Double);
  const double spinor_term = (8 * 24 + 24) * b;
  std::uint64_t measured[3] = {0, 0, 0};
  const Reconstruct schemes[] = {Reconstruct::None, Reconstruct::Twelve,
                                 Reconstruct::Eight};
  for (int i = 0; i < 3; ++i) {
    const Reconstruct r = schemes[i];
    Counter& meter = gauge_bytes_counter(r);
    const std::uint64_t before = meter.value();
    if (r == Reconstruct::None) {
      wilson_hop(out, u, in);
    } else {
      const CompressedGaugeField<double> cu(u, r);
      wilson_hop(out, cu, in);
    }
    measured[i] = meter.value() - before;
    const double per_site =
        static_cast<double>(measured[i]) / static_cast<double>(g.volume());
    EXPECT_DOUBLE_EQ(per_site, 8.0 * reals_per_link(r) * b) << to_string(r);
    EXPECT_DOUBLE_EQ(
        per_site,
        dslash_bytes_per_site(StencilKind::Wilson, Precision::Double, r) -
            spinor_term)
        << to_string(r);
  }
  // The acceptance criterion read straight off the meters: reconstruct-12
  // moves >= 30% fewer gauge bytes than the 18-real field.
  EXPECT_GE(static_cast<double>(measured[0] - measured[1]),
            0.30 * static_cast<double>(measured[0]));
}

TEST(Stencil, GaugeBytesMatchMeteredStaggeredHop) {
  // Staggered loads 8 fat + 8 long full links per site (never
  // reconstructed), all metered under recon=18.
  const LatticeGeometry g({4, 4, 8, 8});
  const GaugeField<double> u = hot_gauge(g, 163);
  const AsqtadLinks links = build_asqtad_links(u);
  const StaggeredField<double> in = gaussian_staggered_source(g, 164);
  StaggeredField<double> out(g);
  Counter& meter = gauge_bytes_counter(Reconstruct::None);
  const std::uint64_t before = meter.value();
  staggered_hop(out, links.fat, links.lng, in);
  const double per_site = static_cast<double>(meter.value() - before) /
                          static_cast<double>(g.volume());
  const double b = bytes_per_real(Precision::Double);
  EXPECT_DOUBLE_EQ(per_site, 16.0 * 18.0 * b);
}

TEST(Stencil, GaugeBytesMatchMeteredPartitionedRecon) {
  // The partitioned split: interior + forward-face links come from the
  // compressed local body, backward-face links from the full ghost zone.
  // Per rank and apply: (8 V_loc - sum_mu fv_mu) links at the local format
  // plus sum_mu fv_mu at recon=18.
  const LatticeGeometry g({4, 4, 4, 8});
  const GaugeField<double> u = hot_gauge(g, 165);
  Partitioning part(g, {1, 1, 1, 2});
  PartitionedWilsonClover<double> op(part, u, nullptr, 0.1, /*comms=*/true,
                                     Reconstruct::Twelve);
  const WilsonField<double> in = gaussian_wilson_source(g, 166);
  WilsonField<double> out(g);

  Counter& local_meter = gauge_bytes_counter(Reconstruct::Twelve);
  Counter& ghost_meter = gauge_bytes_counter(Reconstruct::None);
  const std::uint64_t local_before = local_meter.value();
  const std::uint64_t ghost_before = ghost_meter.value();
  op.apply(out, in);

  const std::int64_t v_loc = part.local().volume();        // 256
  const std::int64_t fv = v_loc / part.local().dim(3);     // t-face: 64
  const std::int64_t ranks = part.num_ranks();
  const int b = static_cast<int>(sizeof(double));
  EXPECT_EQ(local_meter.value() - local_before,
            static_cast<std::uint64_t>(ranks * (8 * v_loc - fv) *
                                       reals_per_link(Reconstruct::Twelve) *
                                       b));
  EXPECT_EQ(ghost_meter.value() - ghost_before,
            static_cast<std::uint64_t>(ranks * fv * 18 * b));
}

TEST(CpuModel, MoreCoresNeverSlower) {
  const double sites = 32.0 * 32 * 32 * 256;
  for (const CpuSystemSpec& sys : {jaguar_xt4(), jaguar_xt5(), intrepid_bgp(),
                                   kraken_xt5()}) {
    double prev = 0;
    for (int cores = 1024; cores <= 65536; cores *= 2) {
      const double t = cpu_sustained_tflops(sys, sites, cores);
      EXPECT_GE(t, prev) << sys.name << " at " << cores;
      prev = t;
    }
  }
}

TEST(Counters, AccumulateAndReset) {
  ExchangeCounters a, b;
  a.bytes_by_dim[0] = 100;
  a.bytes_by_dim[3] = 50;
  a.messages = 4;
  a.exchanges = 1;
  b.bytes_by_dim[0] = 1;
  b.messages = 2;
  b.exchanges = 1;
  a += b;
  EXPECT_EQ(a.bytes_by_dim[0], 101u);
  EXPECT_EQ(a.bytes_by_dim[3], 50u);
  EXPECT_EQ(a.total_bytes(), 151u);
  EXPECT_EQ(a.messages, 6u);
  EXPECT_EQ(a.exchanges, 2u);
  a.reset();
  EXPECT_EQ(a.total_bytes(), 0u);
  EXPECT_EQ(a.messages, 0u);
}

TEST(Machine, AllreduceGrowsLogarithmically) {
  const ClusterSpec c = edge_cluster();
  EXPECT_DOUBLE_EQ(c.allreduce_us(1), 0.0);
  EXPECT_GT(c.allreduce_us(256), c.allreduce_us(16));
  EXPECT_NEAR(c.allreduce_us(256) / c.allreduce_us(16), 2.0, 1e-9);
}

}  // namespace
}  // namespace lqcd
