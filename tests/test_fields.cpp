// Field containers: even-odd storage layout, parity views, ghost-zone
// containers, and precision conversion of every field type.
#include <gtest/gtest.h>

#include "comm/ghost.h"
#include "fields/blas.h"
#include "fields/precision.h"
#include "gauge/clover_leaf.h"
#include "gauge/configure.h"

namespace lqcd {
namespace {

TEST(Fields, ParitySpansPartitionTheField) {
  const LatticeGeometry g({4, 4, 4, 8});
  WilsonField<double> f = gaussian_wilson_source(g, 401);
  auto even = f.parity_span(Parity::Even);
  auto odd = f.parity_span(Parity::Odd);
  EXPECT_EQ(static_cast<std::int64_t>(even.size()), g.half_volume());
  EXPECT_EQ(static_cast<std::int64_t>(odd.size()), g.half_volume());
  // Even span starts at the field base; odd follows contiguously.
  EXPECT_EQ(even.data(), f.sites().data());
  EXPECT_EQ(odd.data(), f.sites().data() + g.half_volume());
  // Coordinates indexed through at() land in the right span.
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    const Coord x = g.eo_coords(s);
    if (LatticeGeometry::parity(x) == 0) {
      EXPECT_LT(g.eo_index(x), g.half_volume());
    } else {
      EXPECT_GE(g.eo_index(x), g.half_volume());
    }
  }
}

TEST(Fields, GaugeFieldDimensionMajorLayout) {
  const LatticeGeometry g({2, 2, 2, 2});
  GaugeField<double> u(g);
  u.set_identity();
  // link(mu, s) strides by volume per dimension.
  auto all = u.all_links();
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), 4 * g.volume());
  EXPECT_EQ(&u.link(1, 0), &all[static_cast<std::size_t>(g.volume())]);
  EXPECT_EQ(&u.link(3, 5), &all[static_cast<std::size_t>(3 * g.volume() + 5)]);
}

TEST(Fields, GhostZonesAllocateOnlyPartitionedDims) {
  const LatticeGeometry g({4, 4, 4, 8});
  NeighborTable nt(g, {false, true, false, true}, 3);
  GhostZones<ColorVector<double>> zones(nt);
  EXPECT_EQ(zones.zone(0, 0).size(), 0u);
  EXPECT_EQ(zones.zone(1, 0).size(),
            static_cast<std::size_t>(3 * g.volume() / 4));
  EXPECT_EQ(zones.zone(2, 1).size(), 0u);
  EXPECT_EQ(zones.zone(3, 1).size(),
            static_cast<std::size_t>(3 * g.volume() / 8));
}

TEST(Fields, GhostZoneLookupMatchesZoneId) {
  const LatticeGeometry g({4, 4, 4, 4});
  NeighborTable nt(g, {false, false, false, true}, 1);
  GhostZones<ColorVector<double>> zones(nt);
  zones.zone(3, 0)[7][1] = Cplx<double>(2.5);
  const auto& got = zones.at(ghost_zone_id(3, 0), 7);
  EXPECT_EQ(got[1], Cplx<double>(2.5));
}

TEST(Fields, PrecisionConversionAllTypes) {
  const LatticeGeometry g({2, 2, 2, 4});
  const GaugeField<double> u = hot_gauge(g, 402);
  const CloverField<double> a = build_clover_field(u, 1.0);

  const GaugeField<float> uf = convert_gauge<float>(u);
  const CloverField<float> af = convert_clover<float>(a);
  const GaugeField<double> u2 = convert_gauge<double>(uf);
  const CloverField<double> a2 = convert_clover<double>(af);

  double gauge_err = 0;
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    for (int mu = 0; mu < kNDim; ++mu) {
      gauge_err = std::max(gauge_err, norm2(u.link(mu, s) - u2.link(mu, s)));
    }
  }
  EXPECT_LT(gauge_err, 1e-12);  // single-precision rounding squared
  EXPECT_GT(gauge_err, 0.0);

  double clover_err = 0;
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    for (int b = 0; b < 2; ++b) {
      for (std::size_t k = 0; k < 36; ++k) {
        clover_err = std::max(
            clover_err,
            std::abs(a.at(s).chi[static_cast<std::size_t>(b)].m[k] -
                     a2.at(s).chi[static_cast<std::size_t>(b)].m[k]));
      }
    }
  }
  EXPECT_LT(clover_err, 1e-5);
}

TEST(Fields, StaggeredConversionRoundTrip) {
  const LatticeGeometry g({4, 4, 4, 4});
  const StaggeredField<double> d = gaussian_staggered_source(g, 403);
  const StaggeredField<double> back =
      convert_field<double>(convert_field<float>(d));
  StaggeredField<double> diff = back;
  axpy(-1.0, d, diff);
  EXPECT_LT(norm2(diff) / norm2(d), 1e-13);
}

TEST(Fields, BytesPerRealTable) {
  EXPECT_EQ(bytes_per_real(Precision::Double), 8);
  EXPECT_EQ(bytes_per_real(Precision::Single), 4);
  EXPECT_EQ(bytes_per_real(Precision::Half), 2);
  EXPECT_STREQ(to_string(Precision::Half), "half");
}

TEST(Fields, SetZeroClearsEverything) {
  const LatticeGeometry g({2, 2, 2, 2});
  WilsonField<double> f = gaussian_wilson_source(g, 404);
  EXPECT_GT(norm2(f), 0.0);
  f.set_zero();
  EXPECT_EQ(norm2(f), 0.0);
}

}  // namespace
}  // namespace lqcd
