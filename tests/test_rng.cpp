#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace lqcd {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  double sum = 0, sum2 = 0, sum4 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
    sum4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
  EXPECT_NEAR(sum4 / n, 3.0, 0.15);  // normal kurtosis
}

TEST(Rng, UniformRange) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, BelowBound) {
  Rng r(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, ForSiteStreamsIndependent) {
  // Same site/slot -> identical stream; different site or slot -> distinct.
  Rng a = Rng::for_site(5, 100, 2);
  Rng b = Rng::for_site(5, 100, 2);
  Rng c = Rng::for_site(5, 101, 2);
  Rng d = Rng::for_site(5, 100, 3);
  EXPECT_EQ(a(), b());
  Rng a2 = Rng::for_site(5, 100, 2);
  EXPECT_NE(a2(), c());
  EXPECT_NE(a2(), d());
}

TEST(Rng, StateRoundTripContinuesStream) {
  // Checkpoint contract: a stream restored from its captured state
  // *continues* its sequence bitwise — including when the capture lands
  // mid-Box-Muller, where one gaussian sits in the cache.
  Rng rng(42);
  for (int i = 0; i < 7; ++i) (void)rng();
  (void)rng.gaussian();  // leaves the Box-Muller cache primed
  const RngState snap = rng.state();
  std::vector<double> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(rng.gaussian());
  Rng restored = Rng::from_state(snap);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(expect[static_cast<std::size_t>(i)], restored.gaussian()) << i;
  }
}

TEST(Rng, ForSiteStateCaptureContinuesDerivedStream) {
  // Regression: restoring a for_site-derived stream must continue its
  // sequence, not restart it from the derivation seed (which is what a
  // restore that only kept (seed, site, slot) would do).
  Rng derived = Rng::for_site(5, 100, 2);
  (void)derived();
  (void)derived.gaussian();  // advance past the derivation point, cache primed
  const RngState snap = derived.state();
  Rng resumed = Rng::from_state(snap);
  Rng restarted = Rng::for_site(5, 100, 2);
  const double next = derived.gaussian();
  EXPECT_EQ(next, resumed.gaussian());
  EXPECT_NE(next, restarted.gaussian());
  // set_state equally rewinds a live stream onto the captured point.
  Rng other(1);
  other.set_state(snap);
  EXPECT_EQ(next, other.gaussian());
  EXPECT_EQ(derived.uniform(), other.uniform());
  EXPECT_EQ(derived(), other());
}

TEST(Rng, SplitMixAdvances) {
  std::uint64_t s = 0;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace lqcd
