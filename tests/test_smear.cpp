// Asqtad fat/long link construction.
#include <gtest/gtest.h>

#include "gauge/configure.h"
#include "gauge/staggered_links.h"
#include "linalg/su3.h"

namespace lqcd {
namespace {

TEST(Smear, UnitGaugeFatLinkValue) {
  // On the free field every path is the identity: the fat link equals the
  // coefficient sum (9/8 for asqtad) times the KS phase.
  const LatticeGeometry g({4, 4, 4, 4});
  const AsqtadCoefficients coeff;
  EXPECT_NEAR(coeff.fat_link_free_value(), 9.0 / 8.0, 1e-15);
  const AsqtadLinks links = build_asqtad_links(unit_gauge(g), coeff);
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    const Coord x = g.eo_coords(s);
    for (int mu = 0; mu < kNDim; ++mu) {
      const double eta = staggered_phase(x, mu);
      Matrix3<double> expect_fat = Matrix3<double>::identity();
      expect_fat *= eta * coeff.fat_link_free_value();
      ASSERT_LT(norm2(links.fat.link(mu, s) - expect_fat), 1e-24);
      Matrix3<double> expect_lng = Matrix3<double>::identity();
      expect_lng *= eta * coeff.c_naik;
      ASSERT_LT(norm2(links.lng.link(mu, s) - expect_lng), 1e-24);
    }
  }
}

TEST(Smear, TreeLevelDerivativeNormalization) {
  // fat + 3 * naik = 1: the improved central difference has unit
  // derivative coefficient at tree level.
  const AsqtadCoefficients c;
  EXPECT_NEAR(c.fat_link_free_value() + 3.0 * c.c_naik, 1.0, 1e-15);
}

TEST(Smear, ProductionMatchesPathEnumerationReference) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 71);
  const AsqtadCoefficients coeff;
  const AsqtadLinks links = build_asqtad_links(u, coeff);
  // Spot-check a representative set of sites and directions against the
  // independent explicit path walker.
  Rng rng(72);
  for (int trial = 0; trial < 24; ++trial) {
    const std::int64_t s =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(g.volume())));
    const Coord x = g.eo_coords(s);
    const int mu = static_cast<int>(rng.below(4));
    const Matrix3<double> ref = fat_link_reference(u, x, mu, coeff);
    ASSERT_LT(norm2(links.fat.link(mu, s) - ref), 1e-20)
        << "site " << s << " mu " << mu;
  }
}

TEST(Smear, FatLinksGaugeCovariant) {
  // F'_mu(x) = Omega(x) F_mu(x) Omega(x+mu)^dag — smearing is built from
  // paths with the same endpoints as the thin link.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 73);
  const auto omega = random_gauge_rotation(g, 74);
  const GaugeField<double> v = gauge_transform(u, omega);
  const AsqtadLinks lu = build_asqtad_links(u);
  const AsqtadLinks lv = build_asqtad_links(v);
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    const Coord x = g.eo_coords(s);
    for (int mu = 0; mu < kNDim; ++mu) {
      const Coord xp1 = g.shifted(x, mu, 1);
      const Matrix3<double> expect_fat =
          omega.at(s) * lu.fat.link(mu, s) * adj(omega.at(xp1));
      ASSERT_LT(norm2(lv.fat.link(mu, s) - expect_fat), 1e-18);
      const Coord xp3 = g.shifted(x, mu, 3);
      const Matrix3<double> expect_lng =
          omega.at(s) * lu.lng.link(mu, s) * adj(omega.at(xp3));
      ASSERT_LT(norm2(lv.lng.link(mu, s) - expect_lng), 1e-18);
    }
  }
}

TEST(Smear, NaiveCoefficientsGiveThinLink) {
  // c1 = 1, everything else 0: fat link = thin link (with phases), long
  // link vanishes.
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 75);
  AsqtadCoefficients naive{};
  naive.c1 = 1.0;
  naive.c3 = naive.c5 = naive.c7 = naive.c_lepage = 0.0;
  naive.c_naik = 0.0;
  const AsqtadLinks links = build_asqtad_links(u, naive);
  for (std::int64_t s = 0; s < g.volume(); ++s) {
    const Coord x = g.eo_coords(s);
    for (int mu = 0; mu < kNDim; ++mu) {
      const double eta = staggered_phase(x, mu);
      Matrix3<double> expect = u.link(mu, s);
      expect *= eta;
      ASSERT_LT(norm2(links.fat.link(mu, s) - expect), 1e-26);
      ASSERT_LT(norm2(links.lng.link(mu, s)), 1e-26);
    }
  }
}

TEST(Smear, StaggeredPhasePattern) {
  // eta_x = 1 everywhere; eta_y flips with x; eta_t with x+y+z.
  EXPECT_EQ(staggered_phase({3, 2, 1, 0}, 0), 1);
  EXPECT_EQ(staggered_phase({1, 0, 0, 0}, 1), -1);
  EXPECT_EQ(staggered_phase({2, 0, 0, 0}, 1), 1);
  EXPECT_EQ(staggered_phase({1, 1, 0, 0}, 2), 1);
  EXPECT_EQ(staggered_phase({1, 1, 1, 0}, 3), -1);
}

TEST(Smear, LongLinkIsTripleProduct) {
  const LatticeGeometry g({4, 4, 4, 4});
  const GaugeField<double> u = hot_gauge(g, 77);
  const AsqtadCoefficients coeff;
  const AsqtadLinks links = build_asqtad_links(u, coeff);
  for (std::int64_t s = 0; s < std::min<std::int64_t>(g.volume(), 64); ++s) {
    const Coord x = g.eo_coords(s);
    for (int mu = 0; mu < kNDim; ++mu) {
      const Coord x1 = g.shifted(x, mu, 1);
      const Coord x2 = g.shifted(x, mu, 2);
      Matrix3<double> expect = u.link(mu, s) * u.link(mu, g.eo_index(x1)) *
                               u.link(mu, g.eo_index(x2));
      expect *= coeff.c_naik * staggered_phase(x, mu);
      ASSERT_LT(norm2(links.lng.link(mu, s) - expect), 1e-24);
    }
  }
}

}  // namespace
}  // namespace lqcd
