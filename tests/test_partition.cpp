#include "lattice/partition.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace lqcd {
namespace {

struct Case {
  std::array<int, 4> dims;
  std::array<int, 4> grid;
};

class PartitionTest : public ::testing::TestWithParam<Case> {};

TEST_P(PartitionTest, RankIndexBijective) {
  Partitioning p(LatticeGeometry(GetParam().dims), GetParam().grid);
  std::set<int> seen;
  for (int r = 0; r < p.num_ranks(); ++r) {
    EXPECT_EQ(p.rank_index(p.rank_coords(r)), r);
    seen.insert(r);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), p.num_ranks());
}

TEST_P(PartitionTest, GlobalLocalRoundTrip) {
  Partitioning p(LatticeGeometry(GetParam().dims), GetParam().grid);
  const LatticeGeometry& g = p.global();
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coord gx = g.coords(i);
    const int r = p.rank_of_site(gx);
    const Coord lx = p.local_coord(gx);
    EXPECT_EQ(p.global_coord(r, lx), gx);
  }
}

TEST_P(PartitionTest, EveryRankOwnsEqualShare) {
  Partitioning p(LatticeGeometry(GetParam().dims), GetParam().grid);
  std::vector<std::int64_t> count(static_cast<std::size_t>(p.num_ranks()));
  const LatticeGeometry& g = p.global();
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    count[static_cast<std::size_t>(p.rank_of_site(g.coords(i)))] += 1;
  }
  for (auto c : count) EXPECT_EQ(c, p.local().volume());
}

TEST_P(PartitionTest, NeighborRanksConsistent) {
  Partitioning p(LatticeGeometry(GetParam().dims), GetParam().grid);
  for (int r = 0; r < p.num_ranks(); ++r) {
    for (int mu = 0; mu < kNDim; ++mu) {
      const int fwd = p.neighbor_rank(r, mu, +1);
      EXPECT_EQ(p.neighbor_rank(fwd, mu, -1), r);
      if (!p.partitioned(mu)) {
        EXPECT_EQ(fwd, r);
      }
    }
  }
}

TEST_P(PartitionTest, BoundaryCrossingSitesLandOnNeighbor) {
  Partitioning p(LatticeGeometry(GetParam().dims), GetParam().grid);
  const LatticeGeometry& g = p.global();
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coord gx = g.coords(i);
    const int r = p.rank_of_site(gx);
    for (int mu = 0; mu < kNDim; ++mu) {
      const Coord lx = p.local_coord(gx);
      if (lx[mu] == p.local().dim(mu) - 1) {
        const int owner = p.rank_of_site(g.shifted(gx, mu, +1));
        EXPECT_EQ(owner, p.neighbor_rank(r, mu, +1));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PartitionTest,
    ::testing::Values(Case{{4, 4, 4, 4}, {1, 1, 1, 1}},
                      Case{{4, 4, 4, 4}, {1, 1, 1, 2}},
                      Case{{4, 4, 4, 8}, {1, 1, 2, 2}},
                      Case{{4, 4, 4, 8}, {2, 2, 2, 2}},
                      Case{{8, 4, 4, 8}, {2, 1, 2, 4}}));

TEST(Partition, RejectsNonDividingGrid) {
  EXPECT_THROW(Partitioning(LatticeGeometry({4, 4, 4, 4}), {3, 1, 1, 1}),
               std::invalid_argument);
}

TEST(Partition, RejectsOddLocalExtent) {
  // 6 / 3 = 2 would be fine, but 6/2=3 is odd -> must throw.
  EXPECT_THROW(Partitioning(LatticeGeometry({6, 4, 4, 4}), {2, 1, 1, 1}),
               std::invalid_argument);
}

TEST(Partition, PartitionedDimsMask) {
  Partitioning p(LatticeGeometry({4, 4, 8, 8}), {1, 2, 1, 4});
  const auto mask = p.partitioned_dims();
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[2]);
  EXPECT_TRUE(mask[3]);
}

}  // namespace
}  // namespace lqcd
