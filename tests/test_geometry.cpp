#include "lattice/geometry.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace lqcd {
namespace {

class GeometryTest : public ::testing::TestWithParam<std::array<int, 4>> {};

TEST_P(GeometryTest, IndexBijective) {
  LatticeGeometry g(GetParam());
  std::set<std::int64_t> seen;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coord x = g.coords(i);
    EXPECT_EQ(g.index(x), i);
    seen.insert(i);
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), g.volume());
}

TEST_P(GeometryTest, EoIndexBijective) {
  LatticeGeometry g(GetParam());
  std::set<std::int64_t> seen;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coord x = g.coords(i);
    const std::int64_t eo = g.eo_index(x);
    EXPECT_GE(eo, 0);
    EXPECT_LT(eo, g.volume());
    EXPECT_TRUE(seen.insert(eo).second) << "eo index collision";
    EXPECT_EQ(g.eo_coords(eo), x);
  }
}

TEST_P(GeometryTest, ParityBlocksAreHalves) {
  LatticeGeometry g(GetParam());
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coord x = g.coords(i);
    const std::int64_t eo = g.eo_index(x);
    if (LatticeGeometry::parity(x) == 0) {
      EXPECT_LT(eo, g.half_volume());
    } else {
      EXPECT_GE(eo, g.half_volume());
    }
  }
}

TEST_P(GeometryTest, ShiftRoundTrip) {
  LatticeGeometry g(GetParam());
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coord x = g.coords(i);
    for (int mu = 0; mu < kNDim; ++mu) {
      for (int d : {1, 2, 3}) {
        EXPECT_EQ(g.shifted(g.shifted(x, mu, d), mu, -d), x);
      }
    }
  }
}

TEST_P(GeometryTest, UnitShiftFlipsParity) {
  LatticeGeometry g(GetParam());
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coord x = g.coords(i);
    for (int mu = 0; mu < kNDim; ++mu) {
      EXPECT_NE(LatticeGeometry::parity(x),
                LatticeGeometry::parity(g.shifted(x, mu, 1)));
      EXPECT_NE(LatticeGeometry::parity(x),
                LatticeGeometry::parity(g.shifted(x, mu, 3)));
      EXPECT_EQ(LatticeGeometry::parity(x),
                LatticeGeometry::parity(g.shifted(x, mu, 2)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeometryTest,
                         ::testing::Values(std::array<int, 4>{2, 2, 2, 2},
                                           std::array<int, 4>{4, 2, 2, 4},
                                           std::array<int, 4>{4, 4, 4, 4},
                                           std::array<int, 4>{2, 4, 6, 8},
                                           std::array<int, 4>{6, 4, 2, 10}));

TEST(Geometry, RejectsOddExtents) {
  EXPECT_THROW(LatticeGeometry({3, 4, 4, 4}), std::invalid_argument);
  EXPECT_THROW(LatticeGeometry({4, 4, 4, 1}), std::invalid_argument);
  EXPECT_THROW(LatticeGeometry({0, 4, 4, 4}), std::invalid_argument);
}

TEST(Geometry, WrapNegative) {
  LatticeGeometry g({4, 4, 4, 4});
  Coord x{-1, 5, -9, 4};
  const Coord w = g.wrap(x);
  EXPECT_EQ(w[0], 3);
  EXPECT_EQ(w[1], 1);
  EXPECT_EQ(w[2], 3);
  EXPECT_EQ(w[3], 0);
}

TEST(Geometry, VolumeMatchesProduct) {
  LatticeGeometry g({2, 4, 6, 8});
  EXPECT_EQ(g.volume(), 2 * 4 * 6 * 8);
  EXPECT_EQ(g.half_volume(), g.volume() / 2);
}

}  // namespace
}  // namespace lqcd
