# Empty dependencies file for lqcd_fields.
# This may be replaced when dependencies are built.
