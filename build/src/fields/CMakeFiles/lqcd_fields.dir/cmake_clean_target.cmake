file(REMOVE_RECURSE
  "liblqcd_fields.a"
)
