file(REMOVE_RECURSE
  "CMakeFiles/lqcd_fields.dir/packed_half.cpp.o"
  "CMakeFiles/lqcd_fields.dir/packed_half.cpp.o.d"
  "CMakeFiles/lqcd_fields.dir/precision.cpp.o"
  "CMakeFiles/lqcd_fields.dir/precision.cpp.o.d"
  "liblqcd_fields.a"
  "liblqcd_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
