file(REMOVE_RECURSE
  "CMakeFiles/lqcd_util.dir/cli.cpp.o"
  "CMakeFiles/lqcd_util.dir/cli.cpp.o.d"
  "CMakeFiles/lqcd_util.dir/log.cpp.o"
  "CMakeFiles/lqcd_util.dir/log.cpp.o.d"
  "CMakeFiles/lqcd_util.dir/parallel_for.cpp.o"
  "CMakeFiles/lqcd_util.dir/parallel_for.cpp.o.d"
  "CMakeFiles/lqcd_util.dir/rng.cpp.o"
  "CMakeFiles/lqcd_util.dir/rng.cpp.o.d"
  "CMakeFiles/lqcd_util.dir/stopwatch.cpp.o"
  "CMakeFiles/lqcd_util.dir/stopwatch.cpp.o.d"
  "liblqcd_util.a"
  "liblqcd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
