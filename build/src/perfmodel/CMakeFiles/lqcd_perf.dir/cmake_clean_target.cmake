file(REMOVE_RECURSE
  "liblqcd_perf.a"
)
