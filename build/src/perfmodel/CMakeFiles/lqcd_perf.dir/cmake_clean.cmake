file(REMOVE_RECURSE
  "CMakeFiles/lqcd_perf.dir/dslash_model.cpp.o"
  "CMakeFiles/lqcd_perf.dir/dslash_model.cpp.o.d"
  "CMakeFiles/lqcd_perf.dir/machine.cpp.o"
  "CMakeFiles/lqcd_perf.dir/machine.cpp.o.d"
  "CMakeFiles/lqcd_perf.dir/solver_model.cpp.o"
  "CMakeFiles/lqcd_perf.dir/solver_model.cpp.o.d"
  "CMakeFiles/lqcd_perf.dir/stream_schedule.cpp.o"
  "CMakeFiles/lqcd_perf.dir/stream_schedule.cpp.o.d"
  "liblqcd_perf.a"
  "liblqcd_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
