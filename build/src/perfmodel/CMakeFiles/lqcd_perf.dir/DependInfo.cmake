
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/dslash_model.cpp" "src/perfmodel/CMakeFiles/lqcd_perf.dir/dslash_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/lqcd_perf.dir/dslash_model.cpp.o.d"
  "/root/repo/src/perfmodel/machine.cpp" "src/perfmodel/CMakeFiles/lqcd_perf.dir/machine.cpp.o" "gcc" "src/perfmodel/CMakeFiles/lqcd_perf.dir/machine.cpp.o.d"
  "/root/repo/src/perfmodel/solver_model.cpp" "src/perfmodel/CMakeFiles/lqcd_perf.dir/solver_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/lqcd_perf.dir/solver_model.cpp.o.d"
  "/root/repo/src/perfmodel/stream_schedule.cpp" "src/perfmodel/CMakeFiles/lqcd_perf.dir/stream_schedule.cpp.o" "gcc" "src/perfmodel/CMakeFiles/lqcd_perf.dir/stream_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lattice/CMakeFiles/lqcd_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/fields/CMakeFiles/lqcd_fields.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lqcd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lqcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
