# Empty dependencies file for lqcd_perf.
# This may be replaced when dependencies are built.
