file(REMOVE_RECURSE
  "CMakeFiles/lqcd_comm.dir/comm.cpp.o"
  "CMakeFiles/lqcd_comm.dir/comm.cpp.o.d"
  "liblqcd_comm.a"
  "liblqcd_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
