# Empty dependencies file for lqcd_gauge.
# This may be replaced when dependencies are built.
