file(REMOVE_RECURSE
  "CMakeFiles/lqcd_gauge.dir/clover_leaf.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/clover_leaf.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/configure.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/configure.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/gauge_io.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/gauge_io.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/heatbath.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/heatbath.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/hmc.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/hmc.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/observables.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/observables.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/staggered_links.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/staggered_links.cpp.o.d"
  "liblqcd_gauge.a"
  "liblqcd_gauge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_gauge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
