
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gauge/clover_leaf.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/clover_leaf.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/clover_leaf.cpp.o.d"
  "/root/repo/src/gauge/configure.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/configure.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/configure.cpp.o.d"
  "/root/repo/src/gauge/gauge_io.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/gauge_io.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/gauge_io.cpp.o.d"
  "/root/repo/src/gauge/heatbath.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/heatbath.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/heatbath.cpp.o.d"
  "/root/repo/src/gauge/hmc.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/hmc.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/hmc.cpp.o.d"
  "/root/repo/src/gauge/observables.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/observables.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/observables.cpp.o.d"
  "/root/repo/src/gauge/staggered_links.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/staggered_links.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/staggered_links.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fields/CMakeFiles/lqcd_fields.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lqcd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/lqcd_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lqcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
