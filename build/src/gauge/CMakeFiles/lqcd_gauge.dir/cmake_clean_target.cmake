file(REMOVE_RECURSE
  "liblqcd_gauge.a"
)
