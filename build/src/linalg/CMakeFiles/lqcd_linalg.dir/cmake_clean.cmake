file(REMOVE_RECURSE
  "CMakeFiles/lqcd_linalg.dir/half.cpp.o"
  "CMakeFiles/lqcd_linalg.dir/half.cpp.o.d"
  "CMakeFiles/lqcd_linalg.dir/reconstruct.cpp.o"
  "CMakeFiles/lqcd_linalg.dir/reconstruct.cpp.o.d"
  "CMakeFiles/lqcd_linalg.dir/small_matrix.cpp.o"
  "CMakeFiles/lqcd_linalg.dir/small_matrix.cpp.o.d"
  "CMakeFiles/lqcd_linalg.dir/su3.cpp.o"
  "CMakeFiles/lqcd_linalg.dir/su3.cpp.o.d"
  "liblqcd_linalg.a"
  "liblqcd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
