
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/half.cpp" "src/linalg/CMakeFiles/lqcd_linalg.dir/half.cpp.o" "gcc" "src/linalg/CMakeFiles/lqcd_linalg.dir/half.cpp.o.d"
  "/root/repo/src/linalg/reconstruct.cpp" "src/linalg/CMakeFiles/lqcd_linalg.dir/reconstruct.cpp.o" "gcc" "src/linalg/CMakeFiles/lqcd_linalg.dir/reconstruct.cpp.o.d"
  "/root/repo/src/linalg/small_matrix.cpp" "src/linalg/CMakeFiles/lqcd_linalg.dir/small_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/lqcd_linalg.dir/small_matrix.cpp.o.d"
  "/root/repo/src/linalg/su3.cpp" "src/linalg/CMakeFiles/lqcd_linalg.dir/su3.cpp.o" "gcc" "src/linalg/CMakeFiles/lqcd_linalg.dir/su3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lqcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
