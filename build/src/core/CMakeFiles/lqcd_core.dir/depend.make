# Empty dependencies file for lqcd_core.
# This may be replaced when dependencies are built.
