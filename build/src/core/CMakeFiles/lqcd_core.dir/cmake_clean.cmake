file(REMOVE_RECURSE
  "CMakeFiles/lqcd_core.dir/facade.cpp.o"
  "CMakeFiles/lqcd_core.dir/facade.cpp.o.d"
  "liblqcd_core.a"
  "liblqcd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
