# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("lattice")
subdirs("linalg")
subdirs("fields")
subdirs("comm")
subdirs("gauge")
subdirs("dirac")
subdirs("solvers")
subdirs("perfmodel")
subdirs("core")
