# Empty dependencies file for lqcd_lattice.
# This may be replaced when dependencies are built.
