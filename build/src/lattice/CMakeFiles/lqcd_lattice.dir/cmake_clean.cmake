file(REMOVE_RECURSE
  "CMakeFiles/lqcd_lattice.dir/block_mask.cpp.o"
  "CMakeFiles/lqcd_lattice.dir/block_mask.cpp.o.d"
  "CMakeFiles/lqcd_lattice.dir/face.cpp.o"
  "CMakeFiles/lqcd_lattice.dir/face.cpp.o.d"
  "CMakeFiles/lqcd_lattice.dir/geometry.cpp.o"
  "CMakeFiles/lqcd_lattice.dir/geometry.cpp.o.d"
  "CMakeFiles/lqcd_lattice.dir/neighbor_table.cpp.o"
  "CMakeFiles/lqcd_lattice.dir/neighbor_table.cpp.o.d"
  "CMakeFiles/lqcd_lattice.dir/partition.cpp.o"
  "CMakeFiles/lqcd_lattice.dir/partition.cpp.o.d"
  "liblqcd_lattice.a"
  "liblqcd_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
