file(REMOVE_RECURSE
  "liblqcd_lattice.a"
)
