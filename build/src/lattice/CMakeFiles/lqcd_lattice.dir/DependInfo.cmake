
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/block_mask.cpp" "src/lattice/CMakeFiles/lqcd_lattice.dir/block_mask.cpp.o" "gcc" "src/lattice/CMakeFiles/lqcd_lattice.dir/block_mask.cpp.o.d"
  "/root/repo/src/lattice/face.cpp" "src/lattice/CMakeFiles/lqcd_lattice.dir/face.cpp.o" "gcc" "src/lattice/CMakeFiles/lqcd_lattice.dir/face.cpp.o.d"
  "/root/repo/src/lattice/geometry.cpp" "src/lattice/CMakeFiles/lqcd_lattice.dir/geometry.cpp.o" "gcc" "src/lattice/CMakeFiles/lqcd_lattice.dir/geometry.cpp.o.d"
  "/root/repo/src/lattice/neighbor_table.cpp" "src/lattice/CMakeFiles/lqcd_lattice.dir/neighbor_table.cpp.o" "gcc" "src/lattice/CMakeFiles/lqcd_lattice.dir/neighbor_table.cpp.o.d"
  "/root/repo/src/lattice/partition.cpp" "src/lattice/CMakeFiles/lqcd_lattice.dir/partition.cpp.o" "gcc" "src/lattice/CMakeFiles/lqcd_lattice.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lqcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
