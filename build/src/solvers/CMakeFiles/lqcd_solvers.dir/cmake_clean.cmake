file(REMOVE_RECURSE
  "CMakeFiles/lqcd_solvers.dir/solvers.cpp.o"
  "CMakeFiles/lqcd_solvers.dir/solvers.cpp.o.d"
  "liblqcd_solvers.a"
  "liblqcd_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
