# Empty dependencies file for lqcd_solvers.
# This may be replaced when dependencies are built.
