file(REMOVE_RECURSE
  "liblqcd_solvers.a"
)
