# Empty dependencies file for lqcd_dirac.
# This may be replaced when dependencies are built.
