file(REMOVE_RECURSE
  "liblqcd_dirac.a"
)
