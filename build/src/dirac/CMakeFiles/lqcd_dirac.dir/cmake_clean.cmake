file(REMOVE_RECURSE
  "CMakeFiles/lqcd_dirac.dir/dense_reference.cpp.o"
  "CMakeFiles/lqcd_dirac.dir/dense_reference.cpp.o.d"
  "CMakeFiles/lqcd_dirac.dir/dirac.cpp.o"
  "CMakeFiles/lqcd_dirac.dir/dirac.cpp.o.d"
  "liblqcd_dirac.a"
  "liblqcd_dirac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_dirac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
