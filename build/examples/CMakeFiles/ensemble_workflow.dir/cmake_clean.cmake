file(REMOVE_RECURSE
  "CMakeFiles/ensemble_workflow.dir/ensemble_workflow.cpp.o"
  "CMakeFiles/ensemble_workflow.dir/ensemble_workflow.cpp.o.d"
  "ensemble_workflow"
  "ensemble_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
