# Empty compiler generated dependencies file for ensemble_workflow.
# This may be replaced when dependencies are built.
