file(REMOVE_RECURSE
  "CMakeFiles/pion_correlator.dir/pion_correlator.cpp.o"
  "CMakeFiles/pion_correlator.dir/pion_correlator.cpp.o.d"
  "pion_correlator"
  "pion_correlator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pion_correlator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
