# Empty dependencies file for pion_correlator.
# This may be replaced when dependencies are built.
