# Empty dependencies file for hmc_evolution.
# This may be replaced when dependencies are built.
