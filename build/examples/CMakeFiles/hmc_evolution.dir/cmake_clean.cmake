file(REMOVE_RECURSE
  "CMakeFiles/hmc_evolution.dir/hmc_evolution.cpp.o"
  "CMakeFiles/hmc_evolution.dir/hmc_evolution.cpp.o.d"
  "hmc_evolution"
  "hmc_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmc_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
