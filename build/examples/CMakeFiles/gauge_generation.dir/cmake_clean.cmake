file(REMOVE_RECURSE
  "CMakeFiles/gauge_generation.dir/gauge_generation.cpp.o"
  "CMakeFiles/gauge_generation.dir/gauge_generation.cpp.o.d"
  "gauge_generation"
  "gauge_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
