# Empty compiler generated dependencies file for gauge_generation.
# This may be replaced when dependencies are built.
