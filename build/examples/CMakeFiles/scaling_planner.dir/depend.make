# Empty dependencies file for scaling_planner.
# This may be replaced when dependencies are built.
