file(REMOVE_RECURSE
  "CMakeFiles/multishift_spectrum.dir/multishift_spectrum.cpp.o"
  "CMakeFiles/multishift_spectrum.dir/multishift_spectrum.cpp.o.d"
  "multishift_spectrum"
  "multishift_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multishift_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
