# Empty dependencies file for multishift_spectrum.
# This may be replaced when dependencies are built.
