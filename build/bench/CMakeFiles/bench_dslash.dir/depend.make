# Empty dependencies file for bench_dslash.
# This may be replaced when dependencies are built.
