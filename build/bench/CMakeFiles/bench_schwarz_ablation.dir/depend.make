# Empty dependencies file for bench_schwarz_ablation.
# This may be replaced when dependencies are built.
