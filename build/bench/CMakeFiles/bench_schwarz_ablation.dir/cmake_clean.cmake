file(REMOVE_RECURSE
  "CMakeFiles/bench_schwarz_ablation.dir/bench_schwarz_ablation.cpp.o"
  "CMakeFiles/bench_schwarz_ablation.dir/bench_schwarz_ablation.cpp.o.d"
  "bench_schwarz_ablation"
  "bench_schwarz_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schwarz_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
