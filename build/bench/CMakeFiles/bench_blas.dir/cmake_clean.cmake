file(REMOVE_RECURSE
  "CMakeFiles/bench_blas.dir/bench_blas.cpp.o"
  "CMakeFiles/bench_blas.dir/bench_blas.cpp.o.d"
  "bench_blas"
  "bench_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
