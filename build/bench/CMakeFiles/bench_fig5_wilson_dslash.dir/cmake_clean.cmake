file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_wilson_dslash.dir/bench_fig5_wilson_dslash.cpp.o"
  "CMakeFiles/bench_fig5_wilson_dslash.dir/bench_fig5_wilson_dslash.cpp.o.d"
  "bench_fig5_wilson_dslash"
  "bench_fig5_wilson_dslash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_wilson_dslash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
