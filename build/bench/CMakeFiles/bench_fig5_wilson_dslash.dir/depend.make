# Empty dependencies file for bench_fig5_wilson_dslash.
# This may be replaced when dependencies are built.
