# Empty dependencies file for bench_fig6_asqtad_dslash.
# This may be replaced when dependencies are built.
