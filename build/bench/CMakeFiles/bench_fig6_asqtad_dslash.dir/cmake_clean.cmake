file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_asqtad_dslash.dir/bench_fig6_asqtad_dslash.cpp.o"
  "CMakeFiles/bench_fig6_asqtad_dslash.dir/bench_fig6_asqtad_dslash.cpp.o.d"
  "bench_fig6_asqtad_dslash"
  "bench_fig6_asqtad_dslash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_asqtad_dslash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
