# Empty compiler generated dependencies file for bench_fig10_multishift.
# This may be replaced when dependencies are built.
