file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_multishift.dir/bench_fig10_multishift.cpp.o"
  "CMakeFiles/bench_fig10_multishift.dir/bench_fig10_multishift.cpp.o.d"
  "bench_fig10_multishift"
  "bench_fig10_multishift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_multishift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
