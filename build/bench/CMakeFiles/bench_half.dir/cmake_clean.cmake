file(REMOVE_RECURSE
  "CMakeFiles/bench_half.dir/bench_half.cpp.o"
  "CMakeFiles/bench_half.dir/bench_half.cpp.o.d"
  "bench_half"
  "bench_half.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_half.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
