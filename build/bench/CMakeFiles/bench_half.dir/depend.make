# Empty dependencies file for bench_half.
# This may be replaced when dependencies are built.
