# Empty dependencies file for bench_fig9_cpu_systems.
# This may be replaced when dependencies are built.
