file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cpu_systems.dir/bench_fig9_cpu_systems.cpp.o"
  "CMakeFiles/bench_fig9_cpu_systems.dir/bench_fig9_cpu_systems.cpp.o.d"
  "bench_fig9_cpu_systems"
  "bench_fig9_cpu_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cpu_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
