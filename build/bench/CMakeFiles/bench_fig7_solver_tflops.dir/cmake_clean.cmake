file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_solver_tflops.dir/bench_fig7_solver_tflops.cpp.o"
  "CMakeFiles/bench_fig7_solver_tflops.dir/bench_fig7_solver_tflops.cpp.o.d"
  "bench_fig7_solver_tflops"
  "bench_fig7_solver_tflops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_solver_tflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
