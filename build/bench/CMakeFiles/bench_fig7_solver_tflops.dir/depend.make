# Empty dependencies file for bench_fig7_solver_tflops.
# This may be replaced when dependencies are built.
