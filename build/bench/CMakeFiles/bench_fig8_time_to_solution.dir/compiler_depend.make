# Empty compiler generated dependencies file for bench_fig8_time_to_solution.
# This may be replaced when dependencies are built.
