file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_time_to_solution.dir/bench_fig8_time_to_solution.cpp.o"
  "CMakeFiles/bench_fig8_time_to_solution.dir/bench_fig8_time_to_solution.cpp.o.d"
  "bench_fig8_time_to_solution"
  "bench_fig8_time_to_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_time_to_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
