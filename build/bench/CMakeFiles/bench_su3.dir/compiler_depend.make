# Empty compiler generated dependencies file for bench_su3.
# This may be replaced when dependencies are built.
