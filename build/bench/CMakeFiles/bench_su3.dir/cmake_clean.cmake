file(REMOVE_RECURSE
  "CMakeFiles/bench_su3.dir/bench_su3.cpp.o"
  "CMakeFiles/bench_su3.dir/bench_su3.cpp.o.d"
  "bench_su3"
  "bench_su3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_su3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
