# Empty compiler generated dependencies file for bench_smear.
# This may be replaced when dependencies are built.
