file(REMOVE_RECURSE
  "CMakeFiles/bench_smear.dir/bench_smear.cpp.o"
  "CMakeFiles/bench_smear.dir/bench_smear.cpp.o.d"
  "bench_smear"
  "bench_smear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
