file(REMOVE_RECURSE
  "CMakeFiles/test_staggered.dir/test_staggered.cpp.o"
  "CMakeFiles/test_staggered.dir/test_staggered.cpp.o.d"
  "test_staggered"
  "test_staggered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_staggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
