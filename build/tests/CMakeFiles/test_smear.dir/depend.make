# Empty dependencies file for test_smear.
# This may be replaced when dependencies are built.
