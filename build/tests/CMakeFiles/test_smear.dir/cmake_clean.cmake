file(REMOVE_RECURSE
  "CMakeFiles/test_smear.dir/test_smear.cpp.o"
  "CMakeFiles/test_smear.dir/test_smear.cpp.o.d"
  "test_smear"
  "test_smear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
