# Empty dependencies file for test_small_matrix.
# This may be replaced when dependencies are built.
