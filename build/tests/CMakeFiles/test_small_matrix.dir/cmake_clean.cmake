file(REMOVE_RECURSE
  "CMakeFiles/test_small_matrix.dir/test_small_matrix.cpp.o"
  "CMakeFiles/test_small_matrix.dir/test_small_matrix.cpp.o.d"
  "test_small_matrix"
  "test_small_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_small_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
