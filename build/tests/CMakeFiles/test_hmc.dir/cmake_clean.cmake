file(REMOVE_RECURSE
  "CMakeFiles/test_hmc.dir/test_hmc.cpp.o"
  "CMakeFiles/test_hmc.dir/test_hmc.cpp.o.d"
  "test_hmc"
  "test_hmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
