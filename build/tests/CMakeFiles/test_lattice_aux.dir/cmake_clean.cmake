file(REMOVE_RECURSE
  "CMakeFiles/test_lattice_aux.dir/test_lattice_aux.cpp.o"
  "CMakeFiles/test_lattice_aux.dir/test_lattice_aux.cpp.o.d"
  "test_lattice_aux"
  "test_lattice_aux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lattice_aux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
