# Empty dependencies file for test_lattice_aux.
# This may be replaced when dependencies are built.
