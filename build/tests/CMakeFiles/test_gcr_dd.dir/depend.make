# Empty dependencies file for test_gcr_dd.
# This may be replaced when dependencies are built.
