file(REMOVE_RECURSE
  "CMakeFiles/test_gcr_dd.dir/test_gcr_dd.cpp.o"
  "CMakeFiles/test_gcr_dd.dir/test_gcr_dd.cpp.o.d"
  "test_gcr_dd"
  "test_gcr_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcr_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
