# Empty dependencies file for test_even_odd.
# This may be replaced when dependencies are built.
