file(REMOVE_RECURSE
  "CMakeFiles/test_even_odd.dir/test_even_odd.cpp.o"
  "CMakeFiles/test_even_odd.dir/test_even_odd.cpp.o.d"
  "test_even_odd"
  "test_even_odd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_even_odd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
