file(REMOVE_RECURSE
  "CMakeFiles/test_blas.dir/test_blas.cpp.o"
  "CMakeFiles/test_blas.dir/test_blas.cpp.o.d"
  "test_blas"
  "test_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
