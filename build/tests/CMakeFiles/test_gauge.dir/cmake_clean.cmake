file(REMOVE_RECURSE
  "CMakeFiles/test_gauge.dir/test_gauge.cpp.o"
  "CMakeFiles/test_gauge.dir/test_gauge.cpp.o.d"
  "test_gauge"
  "test_gauge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gauge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
