file(REMOVE_RECURSE
  "CMakeFiles/test_clover.dir/test_clover.cpp.o"
  "CMakeFiles/test_clover.dir/test_clover.cpp.o.d"
  "test_clover"
  "test_clover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
