# Empty compiler generated dependencies file for test_clover.
# This may be replaced when dependencies are built.
